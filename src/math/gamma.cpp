#include "math/gamma.hpp"

#include <cmath>
#include <stdexcept>

namespace repcheck::math {

double log_gamma(double x) {
  if (!(x > 0.0)) throw std::domain_error("log_gamma requires x > 0");
  return std::lgamma(x);
}

double log_factorial(std::uint64_t n) { return log_gamma(static_cast<double>(n) + 1.0); }

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) throw std::domain_error("log_binomial requires k <= n");
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0.0;
  return std::exp(log_binomial(n, k));
}

namespace {

/// γ(a, x)/Γ(a) by its power series; converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double term = 1.0 / a;
  double sum = term;
  for (int i = 0; i < 1000; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-16) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

/// Γ(a, x)/Γ(a) by the Lentz continued fraction; for x ≥ a + 1.
double gamma_q_continued_fraction(double a, double x) {
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-16) break;
  }
  return h * std::exp(-x + a * std::log(x) - log_gamma(a));
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0)) throw std::domain_error("regularized_gamma_p requires a > 0");
  if (!(x >= 0.0)) throw std::domain_error("regularized_gamma_p requires x >= 0");
  if (x == 0.0) return 0.0;
  return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_continued_fraction(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (!(a > 0.0)) throw std::domain_error("regularized_gamma_q requires a > 0");
  if (!(x >= 0.0)) throw std::domain_error("regularized_gamma_q requires x >= 0");
  if (x == 0.0) return 1.0;
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_continued_fraction(a, x);
}

}  // namespace repcheck::math
