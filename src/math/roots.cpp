#include "math/roots.hpp"

#include <cmath>
#include <stdexcept>

namespace repcheck::math {

MinimizeResult brent_minimize(const std::function<double(double)>& f, double a, double b,
                              double tol, int max_iter) {
  if (!(a < b)) throw std::invalid_argument("brent_minimize requires a < b");
  constexpr double kGolden = 0.3819660112501051;  // (3 - sqrt(5)) / 2
  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;

  int iter = 0;
  for (; iter < max_iter; ++iter) {
    const double m = 0.5 * (a + b);
    const double tol1 = tol + 1e-15 * std::fabs(x);
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - m) <= tol2 - 0.5 * (b - a)) break;

    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Parabolic interpolation through x, v, w.
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) && p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (x < m) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < m) ? b - x : a - x;
      d = kGolden * e;
    }
    const double u = (std::fabs(d) >= tol1) ? x + d : x + ((d > 0.0) ? tol1 : -tol1);
    const double fu = f(u);
    if (fu <= fx) {
      if (u < x) {
        b = x;
      } else {
        a = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  return {x, fx, iter};
}

double bisect_root(const std::function<double(double)>& f, double a, double b, double tol,
                   int max_iter) {
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if (fa * fb > 0.0) throw std::invalid_argument("bisect_root requires a sign change on [a, b]");
  for (int i = 0; i < max_iter && (b - a) > tol; ++i) {
    const double m = 0.5 * (a + b);
    const double fm = f(m);
    if (fm == 0.0) return m;
    if (fa * fm < 0.0) {
      b = m;
      fb = fm;
    } else {
      a = m;
      fa = fm;
    }
  }
  (void)fb;
  return 0.5 * (a + b);
}

MinimizeResult minimize_unbounded(const std::function<double(double)>& f, double seed, double tol) {
  if (!(seed > 0.0)) throw std::invalid_argument("minimize_unbounded requires a positive seed");
  double lo = seed / 2.0;
  double hi = seed * 2.0;
  double flo = f(lo);
  double fhi = f(hi);
  double fmid = f(seed);
  // Grow the bracket until the middle is at or below both edges.
  for (int i = 0; i < 200 && !(fmid <= flo && fmid <= fhi); ++i) {
    if (flo < fmid) {
      hi = seed;
      fhi = fmid;
      seed = lo;
      fmid = flo;
      lo /= 2.0;
      flo = f(lo);
    } else {
      lo = seed;
      flo = fmid;
      seed = hi;
      fmid = fhi;
      hi *= 2.0;
      fhi = f(hi);
    }
  }
  return brent_minimize(f, lo, hi, tol);
}

}  // namespace repcheck::math
