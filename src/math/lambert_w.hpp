// Lambert W function, principal branch W0.
//
// Daly's exact optimal period (the non-first-order solution of Section 3)
// involves the Lambert function; we expose W0 so the model module can report
// the exact optimizer alongside the first-order √(2μC) approximation.
#pragma once

namespace repcheck::math {

/// W0(x): the real solution w ≥ -1 of w·e^w = x, for x ≥ -1/e.
/// Accurate to ~1e-14 (Halley iterations from a series/log initial guess).
[[nodiscard]] double lambert_w0(double x);

/// W-1(x): the real solution w ≤ -1 of w·e^w = x, for x in [-1/e, 0).
[[nodiscard]] double lambert_wm1(double x);

}  // namespace repcheck::math
