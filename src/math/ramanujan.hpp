// Ramanujan Q-function.
//
// Prior work [Ferreira et al., Riesen et al.] estimated the failures-to-
// interruption count through a birthday-problem analogy, n_fail ≈ 1 + Q(b),
// with Q the Ramanujan function; the paper shows this undercounts by ~40%.
// We implement Q so the benches can plot the superseded estimate next to
// Theorem 4.1's exact value.
#pragma once

#include <cstdint>

namespace repcheck::math {

/// Q(n) = Σ_{k=1..n} n! / ((n-k)! n^k), computed by the stable product
/// recurrence term_k = term_{k-1} · (n - k + 1)/n.
[[nodiscard]] double ramanujan_q(std::uint64_t n);

/// First terms of Ramanujan's asymptotic: Q(n) ≈ √(πn/2) - 1/3 + ...
[[nodiscard]] double ramanujan_q_asymptotic(std::uint64_t n);

}  // namespace repcheck::math
