#include "math/beta.hpp"

#include <cmath>
#include <stdexcept>

#include "math/gamma.hpp"

namespace repcheck::math {

namespace {

/// Continued fraction for the incomplete beta (Lentz's method).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 500;
  constexpr double kEps = 1e-16;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) return h;
  }
  throw std::runtime_error("incomplete beta continued fraction did not converge");
}

}  // namespace

double log_beta(double a, double b) {
  if (!(a > 0.0) || !(b > 0.0)) throw std::domain_error("log_beta requires a, b > 0");
  return log_gamma(a) + log_gamma(b) - log_gamma(a + b);
}

double regularized_incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::domain_error("regularized_incomplete_beta requires a, b > 0");
  }
  if (x < 0.0 || x > 1.0) throw std::domain_error("regularized_incomplete_beta requires x in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = a * std::log(x) + b * std::log1p(-x) - log_beta(a, b);
  // Use the continued fraction on the side where it converges fast.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return std::exp(log_front) * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - std::exp(log_front) * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double incomplete_beta(double a, double b, double x) {
  return regularized_incomplete_beta(a, b, x) * std::exp(log_beta(a, b));
}

}  // namespace repcheck::math
