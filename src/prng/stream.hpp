// Deterministic stream derivation for parallel Monte-Carlo.
//
// A StreamFactory turns (master seed, replicate index) into an independent
// Xoshiro256pp engine.  Independence comes from long_jump(): stream i is the
// master engine advanced by i long-jumps (2^192 steps apart), so streams
// never overlap no matter how many numbers a replicate draws.  For large
// replicate counts the factory memoizes the last engine, making sequential
// stream creation O(1) amortized.
#pragma once

#include <cstdint>

#include "prng/xoshiro.hpp"

namespace repcheck::prng {

class StreamFactory {
 public:
  explicit StreamFactory(std::uint64_t master_seed);

  /// Engine for replicate `index`; identical calls return identical engines.
  [[nodiscard]] Xoshiro256pp stream(std::uint64_t index) const;

  [[nodiscard]] std::uint64_t master_seed() const { return master_seed_; }

 private:
  std::uint64_t master_seed_;
  Xoshiro256pp base_;
  // Memoized cursor: engine already advanced by `cached_index_` long-jumps.
  mutable Xoshiro256pp cached_engine_;
  mutable std::uint64_t cached_index_;
};

}  // namespace repcheck::prng
