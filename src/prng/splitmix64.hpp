// SplitMix64 — the standard seeding generator for xoshiro-family engines.
//
// Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
// (public domain).  One multiply-xorshift pipeline per output; passes BigCrush.
#pragma once

#include <cstdint>

namespace repcheck::prng {

class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t operator()() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

 private:
  std::uint64_t state_;
};

}  // namespace repcheck::prng
