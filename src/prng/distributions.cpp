#include "prng/distributions.hpp"

#include <cmath>
#include <stdexcept>

namespace repcheck::prng {

namespace {
/// Uniform in (0, 1] — safe as a log() argument.
double uniform_open0(Xoshiro256pp& rng) { return 1.0 - rng.uniform01(); }
}  // namespace

UniformSampler::UniformSampler(double lo, double hi) : lo_(lo), span_(hi - lo) {
  if (!(hi > lo)) throw std::invalid_argument("uniform sampler needs hi > lo");
}

double UniformSampler::operator()(Xoshiro256pp& rng) const { return lo_ + span_ * rng.uniform01(); }

UniformIndexSampler::UniformIndexSampler(std::uint64_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("uniform index sampler needs n > 0");
}

std::uint64_t UniformIndexSampler::operator()(Xoshiro256pp& rng) const {
  for (;;) {
    if (const auto mapped = map_raw(rng())) return *mapped;
  }
}

std::optional<std::uint64_t> UniformIndexSampler::map_raw(std::uint64_t x) const {
  // Lemire's nearly-divisionless bounded sampling with rejection, so the
  // distribution is exactly uniform.
  const __uint128_t m = static_cast<__uint128_t>(x) * n_;
  const std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low >= n_ || low >= (-n_) % n_) {
    return static_cast<std::uint64_t>(m >> 64);
  }
  return std::nullopt;
}

ExponentialSampler::ExponentialSampler(double lambda) : lambda_(lambda) {
  if (!(lambda > 0.0)) throw std::invalid_argument("exponential rate must be positive");
}

double ExponentialSampler::operator()(Xoshiro256pp& rng) const {
  return -std::log(uniform_open0(rng)) / lambda_;
}

double ExponentialSampler::from_raw(std::uint64_t x) const {
  // Mirror operator(): uniform01 takes the top 53 bits, uniform_open0
  // reflects onto (0, 1].
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
  return -std::log(1.0 - u) / lambda_;
}

WeibullSampler::WeibullSampler(double shape, double scale) : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("weibull parameters must be positive");
  }
}

double WeibullSampler::operator()(Xoshiro256pp& rng) const {
  return scale_ * std::pow(-std::log(uniform_open0(rng)), 1.0 / shape_);
}

double WeibullSampler::mean() const { return scale_ * std::tgamma(1.0 + 1.0 / shape_); }

double sample_standard_normal(Xoshiro256pp& rng) {
  for (;;) {
    const double u = 2.0 * rng.uniform01() - 1.0;
    const double v = 2.0 * rng.uniform01() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

LogNormalSampler::LogNormalSampler(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (!(sigma > 0.0)) throw std::invalid_argument("lognormal sigma must be positive");
}

double LogNormalSampler::operator()(Xoshiro256pp& rng) const {
  return std::exp(mu_ + sigma_ * sample_standard_normal(rng));
}

double LogNormalSampler::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

LogNormalSampler LogNormalSampler::from_mean_cv(double mean, double cv) {
  if (!(mean > 0.0) || !(cv > 0.0)) {
    throw std::invalid_argument("lognormal mean and cv must be positive");
  }
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return LogNormalSampler(mu, std::sqrt(sigma2));
}

GammaSampler::GammaSampler(double shape, double scale) : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("gamma parameters must be positive");
  }
}

double GammaSampler::operator()(Xoshiro256pp& rng) const {
  // Marsaglia & Tsang (2000).  For shape < 1, sample shape+1 and apply the
  // standard power boost.
  const double k = shape_ < 1.0 ? shape_ + 1.0 : shape_;
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  double sample = 0.0;
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = sample_standard_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - rng.uniform01();  // (0, 1]
    if (u < 1.0 - 0.0331 * x * x * x * x ||
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      sample = d * v;
      break;
    }
  }
  if (shape_ < 1.0) {
    const double u = 1.0 - rng.uniform01();
    sample *= std::pow(u, 1.0 / shape_);
  }
  return sample * scale_;
}

GeometricSampler::GeometricSampler(double p) : p_(p) {
  if (!(p > 0.0) || !(p <= 1.0)) throw std::invalid_argument("geometric p must be in (0, 1]");
}

std::uint64_t GeometricSampler::operator()(Xoshiro256pp& rng) const {
  if (p_ >= 1.0) return 0;
  const double u = 1.0 - rng.uniform01();  // (0, 1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p_)));
}

}  // namespace repcheck::prng
