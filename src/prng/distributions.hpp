// Samplers for the failure-model distributions.
//
// Each sampler is a small value type holding its parameters; sampling takes
// the generator by reference so one xoshiro stream can feed many samplers.
// All samplers use inverse-transform or standard rejection methods written
// out explicitly (no libstdc++ distribution objects) so results are
// bit-reproducible across standard library implementations.
#pragma once

#include <cstdint>
#include <optional>

#include "prng/xoshiro.hpp"

namespace repcheck::prng {

/// Uniform real on [lo, hi).
class UniformSampler {
 public:
  UniformSampler(double lo, double hi);
  double operator()(Xoshiro256pp& rng) const;

 private:
  double lo_;
  double span_;
};

/// Uniform integer on [0, n).
class UniformIndexSampler {
 public:
  explicit UniformIndexSampler(std::uint64_t n);
  std::uint64_t operator()(Xoshiro256pp& rng) const;

  /// Maps one raw 64-bit draw to [0, n), or nullopt when Lemire's test
  /// rejects it (probability < n / 2^64).  Callers feeding pre-drawn values
  /// must retry with the *next* raw draw; operator() is exactly this loop,
  /// so buffered and direct sampling consume the same stream.
  [[nodiscard]] std::optional<std::uint64_t> map_raw(std::uint64_t x) const;

  [[nodiscard]] std::uint64_t bound() const { return n_; }

 private:
  std::uint64_t n_;
};

/// Exponential with rate lambda (mean 1/lambda) — the paper's IID fail-stop
/// model; sampled by inversion.
class ExponentialSampler {
 public:
  explicit ExponentialSampler(double lambda);
  double operator()(Xoshiro256pp& rng) const;

  /// The inverse transform applied to one raw 64-bit draw — bit-identical
  /// to operator() consuming that draw from the generator.  Lets callers
  /// batch gap computation over pre-drawn blocks.
  [[nodiscard]] double from_raw(std::uint64_t x) const;

  [[nodiscard]] double rate() const { return lambda_; }
  [[nodiscard]] double mean() const { return 1.0 / lambda_; }

 private:
  double lambda_;
};

/// Weibull(shape k, scale s); k < 1 gives the infant-mortality-heavy
/// inter-arrival pattern typical of HPC failure logs.  Sampled by inversion.
class WeibullSampler {
 public:
  WeibullSampler(double shape, double scale);
  double operator()(Xoshiro256pp& rng) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale() const { return scale_; }

 private:
  double shape_;
  double scale_;
};

/// Lognormal(mu, sigma) of the underlying normal; normal variate drawn by
/// Marsaglia polar method (two uniforms, no trig).
class LogNormalSampler {
 public:
  LogNormalSampler(double mu, double sigma);
  double operator()(Xoshiro256pp& rng) const;
  [[nodiscard]] double mean() const;

  /// Builds a sampler with the requested mean and coefficient of variation.
  static LogNormalSampler from_mean_cv(double mean, double cv);

 private:
  double mu_;
  double sigma_;
};

/// Gamma(shape k, scale theta) via Marsaglia–Tsang squeeze (with the k < 1
/// boost); used by the correlated-trace generator's burst sizes.
class GammaSampler {
 public:
  GammaSampler(double shape, double scale);
  double operator()(Xoshiro256pp& rng) const;
  [[nodiscard]] double mean() const { return shape_ * scale_; }

 private:
  double shape_;
  double scale_;
};

/// Standard normal via Marsaglia polar; exposed for reuse by other samplers.
double sample_standard_normal(Xoshiro256pp& rng);

/// Geometric on {0, 1, 2, ...} with success probability p (mean (1-p)/p).
class GeometricSampler {
 public:
  explicit GeometricSampler(double p);
  std::uint64_t operator()(Xoshiro256pp& rng) const;
  [[nodiscard]] double mean() const { return (1.0 - p_) / p_; }

 private:
  double p_;
};

}  // namespace repcheck::prng
