// xoshiro256++ 1.0 — the project's simulation engine PRNG.
//
// Reference: David Blackman & Sebastiano Vigna, http://prng.di.unimi.it/
// (public domain).  256 bits of state, period 2^256 - 1, passes BigCrush.
// jump() advances 2^128 steps and long_jump() 2^192 steps, giving up to
// 2^64 provably non-overlapping parallel subsequences for Monte-Carlo lanes.
#pragma once

#include <array>
#include <cstdint>

namespace repcheck::prng {

class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a 64-bit seed through SplitMix64, as the
  /// xoshiro authors recommend (avoids all-zero and low-entropy states).
  explicit Xoshiro256pp(std::uint64_t seed);

  /// Directly sets the full state (must not be all-zero).
  explicit Xoshiro256pp(const std::array<std::uint64_t, 4>& state);

  std::uint64_t operator()();

  /// Equivalent to 2^128 calls to operator(); use to split one seed into
  /// non-overlapping streams.
  void jump();

  /// Equivalent to 2^192 calls; use for top-level stream families.
  void long_jump();

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const { return state_; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  friend bool operator==(const Xoshiro256pp& a, const Xoshiro256pp& b) {
    return a.state_ == b.state_;
  }

 private:
  void apply_jump(const std::array<std::uint64_t, 4>& table);

  std::array<std::uint64_t, 4> state_;
};

}  // namespace repcheck::prng
