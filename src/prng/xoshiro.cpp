#include "prng/xoshiro.hpp"

#include <bit>
#include <stdexcept>

#include "prng/splitmix64.hpp"

namespace repcheck::prng {

namespace {
constexpr std::array<std::uint64_t, 4> kJump = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                                0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
constexpr std::array<std::uint64_t, 4> kLongJump = {0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
                                                    0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm();
}

Xoshiro256pp::Xoshiro256pp(const std::array<std::uint64_t, 4>& state) : state_(state) {
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    throw std::invalid_argument("xoshiro256++ state must not be all-zero");
  }
}

std::uint64_t Xoshiro256pp::operator()() {
  const std::uint64_t result = std::rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

void Xoshiro256pp::apply_jump(const std::array<std::uint64_t, 4>& table) {
  std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
  for (std::uint64_t word : table) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

void Xoshiro256pp::jump() { apply_jump(kJump); }

void Xoshiro256pp::long_jump() { apply_jump(kLongJump); }

double Xoshiro256pp::uniform01() {
  // Take the top 53 bits — xoshiro's low bits are weaker by construction.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

}  // namespace repcheck::prng
