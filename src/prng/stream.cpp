#include "prng/stream.hpp"

namespace repcheck::prng {

StreamFactory::StreamFactory(std::uint64_t master_seed)
    : master_seed_(master_seed), base_(master_seed), cached_engine_(base_), cached_index_(0) {}

Xoshiro256pp StreamFactory::stream(std::uint64_t index) const {
  if (index < cached_index_) {
    cached_engine_ = base_;
    cached_index_ = 0;
  }
  while (cached_index_ < index) {
    cached_engine_.long_jump();
    ++cached_index_;
  }
  return cached_engine_;
}

}  // namespace repcheck::prng
