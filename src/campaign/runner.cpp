#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace repcheck::campaign {

const PointOutcome* CampaignResult::find(const SweepPoint& point) const {
  const auto canonical = point.canonical();
  for (const auto& outcome : points) {
    if (outcome.point.canonical() == canonical) return &outcome;
  }
  return nullptr;
}

const sim::MonteCarloSummary& CampaignResult::at(const SweepPoint& point) const {
  const auto* outcome = find(point);
  if (outcome == nullptr) {
    throw std::out_of_range("campaign has no point " + point.canonical());
  }
  return outcome->summary;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Throttled stderr reporter: shards done, cache hits, throughput, ETA.
class ProgressReporter {
 public:
  ProgressReporter(std::string campaign, std::uint64_t to_simulate, std::uint64_t cached,
                   bool enabled)
      : campaign_(std::move(campaign)),
        to_simulate_(to_simulate),
        cached_(cached),
        enabled_(enabled),
        start_(Clock::now()),
        last_print_(start_) {}

  void shard_simulated() {
    const std::uint64_t done = ++done_;
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = Clock::now();
    if (done < to_simulate_ && now - last_print_ < std::chrono::seconds(1)) return;
    last_print_ = now;
    const double secs = std::chrono::duration<double>(now - start_).count();
    const double rate = secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
    const double eta = rate > 0.0 ? static_cast<double>(to_simulate_ - done) / rate : 0.0;
    std::fprintf(stderr,
                 "[campaign %s] %llu/%llu shards simulated (%llu cache hits), %.2f shards/s, "
                 "eta %.0f s\n",
                 campaign_.c_str(), static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(to_simulate_),
                 static_cast<unsigned long long>(cached_), rate, eta);
  }

  void finish(const CampaignStats& stats) const {
    if (!enabled_) return;
    std::fprintf(stderr,
                 "[campaign %s] done: %llu points (%llu from journal), %llu shards "
                 "(%llu cache hits, %llu simulated) in %.1f s\n",
                 campaign_.c_str(), static_cast<unsigned long long>(stats.points),
                 static_cast<unsigned long long>(stats.journal_points),
                 static_cast<unsigned long long>(stats.shards_total),
                 static_cast<unsigned long long>(stats.shards_cached),
                 static_cast<unsigned long long>(stats.shards_simulated), stats.seconds);
  }

 private:
  std::string campaign_;
  std::uint64_t to_simulate_;
  std::uint64_t cached_;
  bool enabled_;
  Clock::time_point start_;
  Clock::time_point last_print_;
  std::atomic<std::uint64_t> done_{0};
  std::mutex mutex_;
};

struct Shard {
  std::size_t point_idx = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::string key;
};

}  // namespace

CampaignRunner::CampaignRunner(SweepSpec spec, PointEvaluator evaluator, RunnerOptions options)
    : spec_(std::move(spec)), evaluator_(std::move(evaluator)), options_(std::move(options)) {
  if (!evaluator_.runs_for || !evaluator_.simulate) {
    throw std::invalid_argument("campaign evaluator callbacks must be set");
  }
}

CampaignResult CampaignRunner::run() {
  const auto t0 = Clock::now();
  const auto points = spec_.expand();
  if (points.empty()) throw std::invalid_argument("campaign expands to zero points");

  ResultCache cache(options_.cache_dir);
  Journal journal(options_.journal_path);

  CampaignResult result;
  result.stats.points = points.size();
  result.points.reserve(points.size());
  std::vector<std::vector<std::string>> shard_keys(points.size());
  std::vector<std::atomic<std::uint64_t>> shards_left(points.size());
  std::vector<Shard> pending;

  for (std::size_t idx = 0; idx < points.size(); ++idx) {
    PointOutcome outcome;
    outcome.point = points[idx];
    outcome.key = point_key(outcome.point, options_.master_seed, options_.engine_version);
    outcome.seed = derive_point_seed(options_.master_seed, outcome.point);

    const std::uint64_t runs = evaluator_.runs_for(outcome.point);
    if (runs == 0) {
      throw std::invalid_argument("evaluator reports zero replicates for " +
                                  outcome.point.canonical());
    }
    // Shard plan: a function of the replicate count only, never of the
    // thread count, so shard cache keys are stable across machines.
    const std::uint64_t size =
        options_.shard_size > 0 ? options_.shard_size : std::max<std::uint64_t>(1, runs / 16);
    const std::uint64_t n_shards = (runs + size - 1) / size;
    outcome.shards = n_shards;
    result.stats.shards_total += n_shards;

    if (auto done = journal.completed(outcome.key)) {
      outcome.summary = std::move(*done);
      outcome.from_journal = true;
      outcome.cached_shards = n_shards;
      ++result.stats.journal_points;
      result.stats.shards_cached += n_shards;
      result.points.push_back(std::move(outcome));
      continue;
    }

    auto& keys = shard_keys[idx];
    keys.reserve(n_shards);
    std::uint64_t uncached = 0;
    for (std::uint64_t s = 0; s < n_shards; ++s) {
      const std::uint64_t begin = s * size;
      const std::uint64_t end = std::min(runs, begin + size);
      keys.push_back(
          shard_key(outcome.point, options_.master_seed, begin, end, options_.engine_version));
      if (cache.contains(keys.back())) {
        ++outcome.cached_shards;
      } else {
        pending.push_back({idx, begin, end, keys.back()});
        ++uncached;
      }
    }
    result.stats.shards_cached += outcome.cached_shards;
    shards_left[idx].store(uncached);
    result.points.push_back(std::move(outcome));
  }

  ProgressReporter progress(spec_.name, pending.size(), result.stats.shards_cached,
                            options_.progress);

  // Merges a point's shard summaries from the cache, in shard order; both
  // cold and warm paths read the same round-tripped records, which is what
  // makes resumed and uninterrupted campaigns bit-identical.
  const auto merge_point = [&](std::size_t idx) {
    sim::MonteCarloSummary merged;
    for (const auto& key : shard_keys[idx]) {
      auto shard_summary = cache.lookup(key);
      if (!shard_summary) {
        throw std::logic_error("campaign shard record vanished before merge: " + key);
      }
      merged.merge(*shard_summary);
    }
    return merged;
  };

  std::vector<std::atomic<bool>> finalized(points.size());
  const auto finalize_point = [&](std::size_t idx) {
    auto& outcome = result.points[idx];
    outcome.summary = merge_point(idx);
    journal.mark_done(outcome.key, outcome.point, outcome.summary);
    finalized[idx].store(true);
  };

  const auto run_unit = [&](const Shard& shard) {
    const auto& outcome = result.points[shard.point_idx];
    const auto summary = evaluator_.simulate(outcome.point, shard.begin, shard.end, outcome.seed);
    cache.insert(shard.key, outcome.point, outcome.seed, shard.begin, shard.end, summary);
    progress.shard_simulated();
    // The worker completing a point's last shard merges and journals it
    // right away, so an interruption never costs more than one shard.
    if (shards_left[shard.point_idx].fetch_sub(1) == 1) finalize_point(shard.point_idx);
  };

  if (options_.pool != nullptr && options_.pool->size() > 0 && pending.size() > 1) {
    std::atomic<std::size_t> next{0};
    options_.pool->parallel_for(pending.size(), [&](std::size_t, std::size_t) {
      for (;;) {
        const std::size_t unit = next.fetch_add(1);
        if (unit >= pending.size()) return;
        run_unit(pending[unit]);
      }
    });
  } else {
    for (const auto& shard : pending) run_unit(shard);
  }

  // Points whose shards were all cache hits never went through run_unit;
  // merge (and journal) them now.
  for (std::size_t idx = 0; idx < points.size(); ++idx) {
    if (result.points[idx].from_journal || finalized[idx].load()) continue;
    finalize_point(idx);
  }

  result.stats.shards_simulated = pending.size();
  result.stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  progress.finish(result.stats);
  return result;
}

}  // namespace repcheck::campaign
