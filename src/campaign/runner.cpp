#include "campaign/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "telemetry/telemetry.hpp"
#include "util/failpoint.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace repcheck::campaign {

bool CampaignResult::ok() const {
  return !stats.drained && stats.failed_points == 0 && stats.incomplete_points == 0 &&
         stats.store_errors == 0;
}

void CampaignResult::build_index() {
  index_.clear();
  for (std::size_t idx = 0; idx < points.size(); ++idx) {
    index_.insert_or_assign(points[idx].point.canonical(), idx);
  }
}

const PointOutcome* CampaignResult::find(const SweepPoint& point) const {
  const auto canonical = point.canonical();
  if (index_.size() == points.size()) {
    const auto it = index_.find(canonical);
    return it == index_.end() ? nullptr : &points[it->second];
  }
  // Hand-assembled result without an index: fall back to the scan.
  for (const auto& outcome : points) {
    if (outcome.point.canonical() == canonical) return &outcome;
  }
  return nullptr;
}

const sim::MonteCarloSummary& CampaignResult::at(const SweepPoint& point) const {
  const auto* outcome = find(point);
  if (outcome == nullptr) {
    throw std::out_of_range("campaign has no point " + point.canonical());
  }
  return outcome->summary;
}

namespace {

namespace fp = util::failpoint;

using Clock = std::chrono::steady_clock;

telemetry::Histogram& shard_replicates_histogram() {
  static telemetry::Histogram& h = telemetry::histogram("campaign.shard.replicates");
  return h;
}

/// Mirrors the finished run's CampaignStats into the telemetry registry so
/// --metrics-out reports carry the exact scheduler counts (cumulative when
/// one process runs several campaigns).  Wall time lands in "campaign.run_ns"
/// — the "_ns" suffix routes it into the report's durations section.
void mirror_stats_to_telemetry(const CampaignStats& stats) {
  if (!telemetry::enabled()) return;
  telemetry::counter("campaign.points").inc(stats.points);
  telemetry::counter("campaign.journal_points").inc(stats.journal_points);
  telemetry::counter("campaign.shards_total").inc(stats.shards_total);
  telemetry::counter("campaign.shards_cached").inc(stats.shards_cached);
  telemetry::counter("campaign.shards_simulated").inc(stats.shards_simulated);
  telemetry::counter("campaign.shards_failed").inc(stats.shards_failed);
  telemetry::counter("campaign.shard_retries").inc(stats.shard_retries);
  telemetry::counter("campaign.failed_points").inc(stats.failed_points);
  telemetry::counter("campaign.incomplete_points").inc(stats.incomplete_points);
  telemetry::counter("campaign.quarantined_records").inc(stats.quarantined_records);
  telemetry::counter("campaign.store_errors").inc(stats.store_errors);
  if (stats.drained) telemetry::counter("campaign.drained").inc();
  telemetry::counter("campaign.run_ns").inc(static_cast<std::uint64_t>(stats.seconds * 1e9));
}

/// Throttled stderr reporter: shards done, cache hits, throughput, ETA.
/// Cache hits are read live from the runner's counter at print time, so
/// hits discovered while shards run (duplicate shard keys resolved by an
/// earlier worker) show up instead of the stale scan-time snapshot.
class ProgressReporter {
 public:
  ProgressReporter(std::string campaign, std::uint64_t to_simulate,
                   const std::atomic<std::uint64_t>* cache_hits, bool enabled)
      : campaign_(std::move(campaign)),
        to_simulate_(to_simulate),
        cache_hits_(cache_hits),
        enabled_(enabled) {}

  void shard_simulated() {
    const std::uint64_t done = ++done_;
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (done < to_simulate_ && watch_.lap_seconds() < 1.0) return;
    watch_.lap();
    const double secs = watch_.seconds();
    const double rate = secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
    const double eta = rate > 0.0 ? static_cast<double>(to_simulate_ - done) / rate : 0.0;
    const std::uint64_t hits = cache_hits_ != nullptr ? cache_hits_->load() : 0;
    std::fprintf(stderr,
                 "[campaign %s] %llu/%llu shards simulated (%llu cache hits), %.2f shards/s, "
                 "eta %.0f s\n",
                 campaign_.c_str(), static_cast<unsigned long long>(done),
                 static_cast<unsigned long long>(to_simulate_),
                 static_cast<unsigned long long>(hits), rate, eta);
  }

  void finish(const CampaignStats& stats) const {
    if (!enabled_) return;
    std::fprintf(stderr,
                 "[campaign %s] %s: %llu points (%llu from journal), %llu shards "
                 "(%llu cache hits, %llu simulated, %llu failed) in %.1f s\n",
                 campaign_.c_str(), stats.drained ? "drained" : "done",
                 static_cast<unsigned long long>(stats.points),
                 static_cast<unsigned long long>(stats.journal_points),
                 static_cast<unsigned long long>(stats.shards_total),
                 static_cast<unsigned long long>(stats.shards_cached),
                 static_cast<unsigned long long>(stats.shards_simulated),
                 static_cast<unsigned long long>(stats.shards_failed), stats.seconds);
  }

 private:
  std::string campaign_;
  std::uint64_t to_simulate_;
  const std::atomic<std::uint64_t>* cache_hits_;
  bool enabled_;
  util::Stopwatch watch_;
  std::atomic<std::uint64_t> done_{0};
  std::mutex mutex_;
};

struct Shard {
  std::size_t point_idx = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::string key;
};

}  // namespace

CampaignRunner::CampaignRunner(SweepSpec spec, PointEvaluator evaluator, RunnerOptions options)
    : spec_(std::move(spec)), evaluator_(std::move(evaluator)), options_(std::move(options)) {
  if (!evaluator_.runs_for || !evaluator_.simulate) {
    throw std::invalid_argument("campaign evaluator callbacks must be set");
  }
}

CampaignResult CampaignRunner::run() {
  TELEMETRY_SPAN("campaign.run");
  const auto t0 = Clock::now();
  const auto points = spec_.expand();
  if (points.empty()) throw std::invalid_argument("campaign expands to zero points");

  ResultCache cache(options_.cache_dir);
  Journal journal(options_.journal_path);

  CampaignResult result;
  result.stats.points = points.size();
  result.stats.quarantined_records =
      cache.load_stats().quarantined + journal.load_stats().quarantined;
  result.points.reserve(points.size());
  std::vector<std::vector<std::string>> shard_keys(points.size());
  std::vector<std::atomic<std::uint64_t>> shards_left(points.size());
  std::vector<Shard> pending;

  for (std::size_t idx = 0; idx < points.size(); ++idx) {
    PointOutcome outcome;
    outcome.point = points[idx];
    outcome.key = point_key(outcome.point, options_.master_seed, options_.engine_version);
    outcome.seed = derive_point_seed(options_.master_seed, outcome.point);

    const std::uint64_t runs = evaluator_.runs_for(outcome.point);
    if (runs == 0) {
      throw std::invalid_argument("evaluator reports zero replicates for " +
                                  outcome.point.canonical());
    }
    // Shard plan: a function of the replicate count only, never of the
    // thread count, so shard cache keys are stable across machines.
    const std::uint64_t size =
        options_.shard_size > 0 ? options_.shard_size : std::max<std::uint64_t>(1, runs / 16);
    const std::uint64_t n_shards = (runs + size - 1) / size;
    outcome.shards = n_shards;
    result.stats.shards_total += n_shards;

    if (auto done = journal.completed(outcome.key)) {
      outcome.summary = std::move(*done);
      outcome.from_journal = true;
      outcome.cached_shards = n_shards;
      ++result.stats.journal_points;
      result.stats.shards_cached += n_shards;
      result.points.push_back(std::move(outcome));
      continue;
    }

    auto& keys = shard_keys[idx];
    keys.reserve(n_shards);
    std::uint64_t uncached = 0;
    for (std::uint64_t s = 0; s < n_shards; ++s) {
      const std::uint64_t begin = s * size;
      const std::uint64_t end = std::min(runs, begin + size);
      keys.push_back(
          shard_key(outcome.point, options_.master_seed, begin, end, options_.engine_version));
      if (cache.contains(keys.back())) {
        ++outcome.cached_shards;
      } else {
        pending.push_back({idx, begin, end, keys.back()});
        ++uncached;
      }
    }
    result.stats.shards_cached += outcome.cached_shards;
    shards_left[idx].store(uncached);
    result.points.push_back(std::move(outcome));
  }

  // Cache hits, live: seeded with the scan-time count and bumped whenever a
  // pending shard turns out to be cached by the time its worker claims it
  // (duplicate shard keys across points).  ProgressReporter reads it at
  // print time — this is what keeps the printed hit count from going stale.
  std::atomic<std::uint64_t> cache_hits{result.stats.shards_cached};
  ProgressReporter progress(spec_.name, pending.size(), &cache_hits, options_.progress);

  const auto stop_requested = [&] {
    return options_.stop != nullptr && options_.stop->load(std::memory_order_relaxed);
  };

  std::atomic<std::uint64_t> simulated{0};
  std::atomic<std::uint64_t> shards_failed{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> store_errors{0};
  std::atomic<bool> drained{false};
  // Guards PointOutcome::{status,error}: any shard worker of a point may
  // record the first failure, and the finalizing worker reads it.
  std::mutex failure_mutex;

  // Merges a point's shard summaries from the cache, in shard order; both
  // cold and warm paths read the same round-tripped records, which is what
  // makes resumed and uninterrupted campaigns bit-identical.
  const auto merge_point = [&](std::size_t idx) {
    sim::MonteCarloSummary merged;
    for (const auto& key : shard_keys[idx]) {
      auto shard_summary = cache.lookup(key);
      if (!shard_summary) {
        throw std::logic_error("campaign shard record vanished before merge: " + key);
      }
      merged.merge(*shard_summary);
    }
    return merged;
  };

  const auto record_point_failure = [&](std::size_t idx, const std::string& what) {
    std::lock_guard<std::mutex> lock(failure_mutex);
    auto& outcome = result.points[idx];
    if (outcome.status != PointStatus::kFailed) {
      outcome.status = PointStatus::kFailed;
      outcome.error = what;
    }
  };

  std::vector<std::atomic<bool>> finalized(points.size());
  const auto finalize_point = [&](std::size_t idx) {
    TELEMETRY_SPAN("campaign.point.finalize");
    auto& outcome = result.points[idx];
    {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (outcome.status == PointStatus::kFailed) {
        finalized[idx].store(true);
        return;  // no merge: at least one shard is missing for good
      }
    }
    outcome.summary = merge_point(idx);
    try {
      journal.mark_done(outcome.key, outcome.point, outcome.summary);
    } catch (const StoreWriteError& e) {
      // The summary is correct in memory; only resumability is impaired.
      // Surface it without failing the point.
      util::log_error() << e.what();
      store_errors.fetch_add(1);
    }
    finalized[idx].store(true);
  };

  // Exponential backoff between shard retries, polled against the drain
  // flag so a stop request is not held up by a sleeping retry loop.
  const auto backoff = [&](std::uint32_t attempt) {
    const std::uint64_t cap = 5000;
    std::uint64_t ms = std::min<std::uint64_t>(
        cap, static_cast<std::uint64_t>(options_.retry_backoff_ms) << attempt);
    while (ms > 0 && !stop_requested()) {
      const std::uint64_t slice = std::min<std::uint64_t>(ms, 20);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      ms -= slice;
    }
  };

  const auto run_unit = [&](const Shard& shard) {
    TELEMETRY_SPAN("campaign.shard");
    const auto& outcome = result.points[shard.point_idx];
    if (cache.contains(shard.key)) {
      // Another worker already produced this record (duplicate sweep points
      // share shard keys) — count the hit instead of re-simulating.
      cache_hits.fetch_add(1);
      if (shards_left[shard.point_idx].fetch_sub(1) == 1) finalize_point(shard.point_idx);
      return;
    }
    for (std::uint32_t attempt = 0;; ++attempt) {
      try {
        if (REPCHECK_FAILPOINT("campaign.evaluator.throw")) {
          throw std::runtime_error(
              "injected evaluator fault (failpoint campaign.evaluator.throw)");
        }
        if (REPCHECK_FAILPOINT("campaign.evaluator.stall")) {
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
        const auto summary =
            evaluator_.simulate(outcome.point, shard.begin, shard.end, outcome.seed);
        cache.insert(shard.key, outcome.point, outcome.seed, shard.begin, shard.end, summary);
        shard_replicates_histogram().observe(shard.end - shard.begin);
        simulated.fetch_add(1);
        progress.shard_simulated();
        break;
      } catch (const std::exception& e) {
        if (attempt < options_.max_retries && !stop_requested()) {
          retries.fetch_add(1);
          util::log_warn() << "campaign " << spec_.name << ": shard [" << shard.begin << ", "
                           << shard.end << ") of " << outcome.point.canonical()
                           << " failed (attempt " << (attempt + 1) << "/"
                           << (options_.max_retries + 1) << "): " << e.what();
          backoff(attempt);
          continue;
        }
        shards_failed.fetch_add(1);
        util::log_error() << "campaign " << spec_.name << ": shard [" << shard.begin << ", "
                          << shard.end << ") of " << outcome.point.canonical()
                          << " failed permanently: " << e.what();
        record_point_failure(shard.point_idx, e.what());
        break;
      }
    }
    // The worker completing a point's last shard merges and journals it
    // right away, so an interruption never costs more than one shard.
    if (shards_left[shard.point_idx].fetch_sub(1) == 1) finalize_point(shard.point_idx);
  };

  if (options_.pool != nullptr && options_.pool->size() > 0 && pending.size() > 1) {
    // parallel_for's chunks are claimed dynamically, so a slow shard does
    // not pin the shards behind it to one lane; its help-drain scheduler
    // also makes it safe for a shard to re-enter the shared pool (e.g.
    // run_monte_carlo with the same pool).
    options_.pool->parallel_for(pending.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t unit = begin; unit < end; ++unit) {
        if (stop_requested()) {
          drained.store(true);
          return;
        }
        run_unit(pending[unit]);
      }
    });
  } else {
    for (const auto& shard : pending) {
      if (stop_requested()) {
        drained.store(true);
        break;
      }
      run_unit(shard);
    }
  }

  // Points whose shards were all cache hits never went through run_unit;
  // merge (and journal) them now.  Points still owing shards were drained:
  // mark them incomplete (their cached/simulated shards are persisted, so
  // a rerun picks up where this one stopped).
  for (std::size_t idx = 0; idx < points.size(); ++idx) {
    if (result.points[idx].from_journal || finalized[idx].load()) continue;
    if (shards_left[idx].load() == 0) {
      finalize_point(idx);
    } else {
      auto& outcome = result.points[idx];
      if (outcome.status == PointStatus::kOk) outcome.status = PointStatus::kIncomplete;
    }
  }

  for (const auto& outcome : result.points) {
    if (outcome.status == PointStatus::kFailed) ++result.stats.failed_points;
    if (outcome.status == PointStatus::kIncomplete) ++result.stats.incomplete_points;
  }
  result.stats.shards_cached = cache_hits.load();
  result.stats.shards_simulated = simulated.load();
  result.stats.shards_failed = shards_failed.load();
  result.stats.shard_retries = retries.load();
  result.stats.store_errors = store_errors.load();
  result.stats.drained = drained.load();
  result.stats.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  result.build_index();
  mirror_stats_to_telemetry(result.stats);
  progress.finish(result.stats);
  return result;
}

}  // namespace repcheck::campaign
