// Declarative parameter sweeps — the campaign engine's input language.
//
// A SweepPoint is a named-parameter map describing one experimental
// configuration; a SweepSpec describes a whole campaign:
//
//   base      parameters shared by every point
//   axes      cartesian grid (later axes vary fastest)
//   overlays  tied parameter bundles — each overlay set multiplies the grid
//             like an axis, but one entry can set several parameters at
//             once (e.g. a figure "series" fixing strategy + period rule)
//   extra     explicit points appended after the grid (merged over base)
//
// Points canonicalize to a "k1=v1;k2=v2" string (keys sorted, doubles in
// shortest round-trip form) — the basis for content-addressed cache keys
// and deterministic per-point seeds.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace repcheck::campaign {

using ParamValue = std::variant<std::int64_t, double, std::string, bool>;

/// Canonical text form of a value (doubles via shortest round-trip).
[[nodiscard]] std::string render_param(const ParamValue& value);

/// Inverse-ish of render_param for CLI input: integer literal → int64,
/// number → double, true/false → bool, anything else → string.
[[nodiscard]] ParamValue parse_param(std::string_view text);

class SweepPoint {
 public:
  SweepPoint() = default;
  SweepPoint(std::initializer_list<std::pair<const std::string, ParamValue>> init)
      : params_(init) {}

  void set(std::string name, ParamValue value);
  /// Copies every parameter of `overlay` into this point (overlay wins).
  void merge(const SweepPoint& overlay);

  [[nodiscard]] bool has(std::string_view name) const;
  [[nodiscard]] const ParamValue* find(std::string_view name) const;

  /// Typed access; int64 values coerce to double, and integral doubles
  /// coerce to int64.  The no-default overloads throw std::out_of_range
  /// when the parameter is absent (and std::invalid_argument on a type
  /// mismatch), naming the parameter.
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name, double def) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t def) const;
  [[nodiscard]] std::string get_string(std::string_view name) const;
  [[nodiscard]] std::string get_string(std::string_view name, std::string def) const;

  /// "k1=v1;k2=v2" with keys sorted — stable across runs and platforms.
  [[nodiscard]] std::string canonical() const;

  [[nodiscard]] const std::map<std::string, ParamValue, std::less<>>& params() const {
    return params_;
  }

 private:
  std::map<std::string, ParamValue, std::less<>> params_;
};

struct Axis {
  std::string name;
  std::vector<ParamValue> values;
};

struct SweepSpec {
  std::string name = "campaign";
  SweepPoint base;
  std::vector<Axis> axes;
  std::vector<std::vector<SweepPoint>> overlays;
  std::vector<SweepPoint> extra;

  /// Expansion order: axes in declaration order (later = faster), then
  /// overlay sets (innermost), then `extra` appended.  Renderers rely on
  /// this ordering.
  [[nodiscard]] std::vector<SweepPoint> expand() const;
};

}  // namespace repcheck::campaign
