#include "campaign/sweep.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

#include "util/jsonl.hpp"

namespace repcheck::campaign {

std::string render_param(const ParamValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&value)) return util::format_double(*d);
  if (const auto* s = std::get_if<std::string>(&value)) return *s;
  return std::get<bool>(value) ? "true" : "false";
}

ParamValue parse_param(std::string_view text) {
  if (text == "true") return ParamValue{true};
  if (text == "false") return ParamValue{false};
  {
    std::int64_t i = 0;
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), i);
    if (ec == std::errc{} && ptr == text.data() + text.size()) return ParamValue{i};
  }
  if (const auto d = util::parse_double(text); d && std::isfinite(*d)) return ParamValue{*d};
  return ParamValue{std::string(text)};
}

void SweepPoint::set(std::string name, ParamValue value) {
  params_.insert_or_assign(std::move(name), std::move(value));
}

void SweepPoint::merge(const SweepPoint& overlay) {
  for (const auto& [name, value] : overlay.params_) params_.insert_or_assign(name, value);
}

bool SweepPoint::has(std::string_view name) const { return params_.find(name) != params_.end(); }

const ParamValue* SweepPoint::find(std::string_view name) const {
  const auto it = params_.find(name);
  return it == params_.end() ? nullptr : &it->second;
}

namespace {

[[noreturn]] void missing(std::string_view name) {
  throw std::out_of_range("sweep point has no parameter '" + std::string(name) + "'");
}

[[noreturn]] void bad_type(std::string_view name, const char* wanted) {
  throw std::invalid_argument("sweep parameter '" + std::string(name) + "' is not " + wanted);
}

}  // namespace

double SweepPoint::get_double(std::string_view name) const {
  const auto* value = find(name);
  if (value == nullptr) missing(name);
  if (const auto* d = std::get_if<double>(value)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(value)) return static_cast<double>(*i);
  bad_type(name, "numeric");
}

double SweepPoint::get_double(std::string_view name, double def) const {
  return has(name) ? get_double(name) : def;
}

std::int64_t SweepPoint::get_int(std::string_view name) const {
  const auto* value = find(name);
  if (value == nullptr) missing(name);
  if (const auto* i = std::get_if<std::int64_t>(value)) return *i;
  if (const auto* d = std::get_if<double>(value)) {
    if (std::nearbyint(*d) == *d && std::abs(*d) <= 9.007199254740992e15) {
      return static_cast<std::int64_t>(*d);
    }
  }
  bad_type(name, "an integer");
}

std::int64_t SweepPoint::get_int(std::string_view name, std::int64_t def) const {
  return has(name) ? get_int(name) : def;
}

std::string SweepPoint::get_string(std::string_view name) const {
  const auto* value = find(name);
  if (value == nullptr) missing(name);
  if (const auto* s = std::get_if<std::string>(value)) return *s;
  bad_type(name, "a string");
}

std::string SweepPoint::get_string(std::string_view name, std::string def) const {
  return has(name) ? get_string(name) : std::move(def);
}

std::string SweepPoint::canonical() const {
  std::string out;
  bool first = true;
  for (const auto& [name, value] : params_) {
    if (!first) out += ';';
    first = false;
    out += name;
    out += '=';
    out += render_param(value);
  }
  return out;
}

std::vector<SweepPoint> SweepSpec::expand() const {
  std::vector<SweepPoint> points{base};
  for (const auto& axis : axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("sweep axis '" + axis.name + "' has no values");
    }
    std::vector<SweepPoint> next;
    next.reserve(points.size() * axis.values.size());
    for (const auto& point : points) {
      for (const auto& value : axis.values) {
        auto& expanded = next.emplace_back(point);
        expanded.set(axis.name, value);
      }
    }
    points = std::move(next);
  }
  for (const auto& overlay_set : overlays) {
    if (overlay_set.empty()) throw std::invalid_argument("empty overlay set in sweep spec");
    std::vector<SweepPoint> next;
    next.reserve(points.size() * overlay_set.size());
    for (const auto& point : points) {
      for (const auto& overlay : overlay_set) {
        auto& expanded = next.emplace_back(point);
        expanded.merge(overlay);
      }
    }
    points = std::move(next);
  }
  for (const auto& point : extra) {
    auto expanded = base;
    expanded.merge(point);
    points.push_back(std::move(expanded));
  }
  return points;
}

}  // namespace repcheck::campaign
