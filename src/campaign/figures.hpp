// Built-in campaigns: the paper figures expressed as SweepSpecs, plus the
// renderers that turn a CampaignResult back into each figure's table.
//
// Spec builders and renderers are paired: each renderer indexes
// CampaignResult::points by the documented SweepSpec::expand() order of its
// builder (axes outer-to-inner in declaration order, overlay variants
// innermost), so the two must evolve together.
#pragma once

#include "campaign/runner.hpp"
#include "util/table.hpp"

namespace repcheck::campaign {

/// Figure 3: simulated vs predicted overhead as the checkpoint cost grows.
struct Fig03Params {
  std::int64_t procs = 200000;
  double mtbf_years = 5.0;
  std::int64_t runs = 60;
  std::int64_t periods = 100;
};
[[nodiscard]] SweepSpec fig03_spec(const Fig03Params& params = {});
[[nodiscard]] util::Table fig03_render(const CampaignResult& result);

/// Figure 7: overhead vs individual MTBF for C = 60 s and C = 600 s.
struct Fig07Params {
  std::int64_t procs = 200000;
  std::int64_t runs = 30;
  std::int64_t periods = 100;
};
[[nodiscard]] SweepSpec fig07_spec(const Fig07Params& params = {});
[[nodiscard]] util::Table fig07_render(const CampaignResult& result);

/// Validation sweep: sim-vs-model relative errors across a (b, mu, C) grid,
/// with crash300 replicate scaling (every point sees ~300 crashes).
struct ValidateParams {
  std::int64_t runs = 80;
  std::int64_t periods = 100;
};
[[nodiscard]] SweepSpec validate_spec(const ValidateParams& params = {});
[[nodiscard]] util::Table validate_render(const CampaignResult& result);

struct BuiltinCampaign {
  std::string name;
  std::string description;
};
/// The campaigns `repcheck_campaign --campaign <name>` knows about.
[[nodiscard]] std::vector<BuiltinCampaign> builtin_campaigns();

}  // namespace repcheck::campaign
