#include "campaign/figures.hpp"

#include "campaign/simulate.hpp"
#include "model/mtti.hpp"
#include "model/overhead.hpp"
#include "model/units.hpp"

namespace repcheck::campaign {

namespace {

SweepPoint variant(std::string label, std::string strategy, std::string period_rule) {
  SweepPoint point;
  point.set("variant", std::move(label));
  point.set("strategy", std::move(strategy));
  point.set("period_rule", std::move(period_rule));
  return point;
}

std::vector<ParamValue> doubles(std::initializer_list<double> values) {
  return {values.begin(), values.end()};
}

}  // namespace

SweepSpec fig03_spec(const Fig03Params& params) {
  SweepSpec spec;
  spec.name = "fig03";
  spec.base.set("procs", params.procs);
  spec.base.set("mtbf_years", params.mtbf_years);
  spec.base.set("runs", params.runs);
  spec.base.set("periods", params.periods);
  spec.axes.push_back({"c", doubles({60.0, 300.0, 600.0, 900.0, 1200.0, 1800.0, 2400.0, 3000.0})});
  spec.overlays.push_back({variant("rs_topt", "restart", "t_opt_rs"),
                           variant("rs_tmtti", "restart", "t_mtti_no"),
                           variant("no_tmtti", "no-restart", "t_mtti_no")});
  return spec;
}

util::Table fig03_render(const CampaignResult& result) {
  util::Table table({"c_s", "sim_rs_topt", "model_rs_topt", "sim_rs_tmtti", "model_rs_tmtti",
                     "sim_no_tmtti", "model_no_tmtti"});
  // expand() order: 8 c-values x 3 variants, variants innermost.
  for (std::size_t ci = 0; 3 * ci + 2 < result.points.size(); ++ci) {
    const auto& rs_topt = result.points[3 * ci];
    const auto& rs_tmtti = result.points[3 * ci + 1];
    const auto& no_tmtti = result.points[3 * ci + 2];

    const double c = rs_topt.point.get_double("c");
    const auto b = static_cast<std::uint64_t>(rs_topt.point.get_int("procs")) / 2;
    const double mu = model::years(rs_topt.point.get_double("mtbf_years"));
    const double t_rs = resolve_period(rs_topt.point);
    const double t_no = resolve_period(no_tmtti.point);

    table.add_numeric_row({c, overhead_mean(rs_topt.summary),
                           model::overhead_restart(c, t_rs, b, mu),
                           overhead_mean(rs_tmtti.summary),
                           model::overhead_restart(c, t_no, b, mu),
                           overhead_mean(no_tmtti.summary),
                           model::overhead_no_restart(c, t_no, b, mu)});
  }
  return table;
}

SweepSpec fig07_spec(const Fig07Params& params) {
  SweepSpec spec;
  spec.name = "fig07";
  spec.base.set("procs", params.procs);
  spec.base.set("runs", params.runs);
  spec.base.set("periods", params.periods);
  spec.axes.push_back({"c", doubles({60.0, 600.0})});
  spec.axes.push_back({"mtbf_years", doubles({1.0, 2.0, 5.0, 10.0, 20.0, 50.0})});
  auto with_cr = [](std::string label, std::string strategy, std::string rule, double cr) {
    auto point = variant(std::move(label), std::move(strategy), std::move(rule));
    point.set("cr_over_c", cr);
    return point;
  };
  spec.overlays.push_back({with_cr("rs_topt_cr1", "restart", "t_opt_rs", 1.0),
                           with_cr("rs_topt_cr2", "restart", "t_opt_rs", 2.0),
                           with_cr("rs_tmtti_cr1", "restart", "t_mtti_no", 1.0),
                           with_cr("rs_tmtti_cr2", "restart", "t_mtti_no", 2.0),
                           with_cr("no_tmtti", "no-restart", "t_mtti_no", 1.0)});
  return spec;
}

util::Table fig07_render(const CampaignResult& result) {
  util::Table table({"c_s", "mtbf_years", "rs_topt_cr1", "rs_topt_cr2", "rs_tmtti_cr1",
                     "rs_tmtti_cr2", "no_tmtti"});
  // expand() order: 2 c-values x 6 MTBFs x 5 variants, variants innermost.
  for (std::size_t cell = 0; 5 * cell + 4 < result.points.size(); ++cell) {
    const auto* outcomes = &result.points[5 * cell];
    std::vector<double> row{outcomes[0].point.get_double("c"),
                            outcomes[0].point.get_double("mtbf_years")};
    for (std::size_t vi = 0; vi < 5; ++vi) row.push_back(overhead_mean(outcomes[vi].summary));
    table.add_numeric_row(row);
  }
  return table;
}

SweepSpec validate_spec(const ValidateParams& params) {
  SweepSpec spec;
  spec.name = "validate";
  spec.base.set("runs", params.runs);
  spec.base.set("periods", params.periods);
  spec.base.set("runs_rule", std::string("crash300"));
  spec.axes.push_back(
      {"procs", {ParamValue{std::int64_t{2000}}, ParamValue{std::int64_t{20000}},
                 ParamValue{std::int64_t{200000}}}});
  spec.axes.push_back({"mtbf_years", doubles({1.0, 5.0, 20.0})});
  spec.axes.push_back({"c", doubles({60.0, 600.0})});
  spec.overlays.push_back({variant("rs", "restart", "t_opt_rs"),
                           variant("no", "no-restart", "t_mtti_no")});
  return spec;
}

util::Table validate_render(const CampaignResult& result) {
  util::Table table({"pairs", "mtbf_years", "c_s", "lambda_t", "err_rs_pct", "t_over_mtti",
                     "err_no_pct"});
  // expand() order: 3 b-values x 3 MTBFs x 2 C-values, with the rs/no
  // variant pair innermost.
  for (std::size_t cell = 0; 2 * cell + 1 < result.points.size(); ++cell) {
    const auto& rs = result.points[2 * cell];
    const auto& no = result.points[2 * cell + 1];

    const auto b = static_cast<std::uint64_t>(rs.point.get_int("procs")) / 2;
    const double mtbf_years = rs.point.get_double("mtbf_years");
    const double mu = model::years(mtbf_years);
    const double c = rs.point.get_double("c");
    const double t_rs = resolve_period(rs.point);
    const double t_no = resolve_period(no.point);
    const double model_rs = model::overhead_restart(c, t_rs, b, mu);
    const double model_no = model::overhead_no_restart(c, t_no, b, mu);

    table.add_numeric_row({static_cast<double>(b), mtbf_years, c, t_rs / mu,
                           100.0 * (model_rs / overhead_mean(rs.summary) - 1.0),
                           t_no / model::mtti(b, mu),
                           100.0 * (model_no / overhead_mean(no.summary) - 1.0)});
  }
  return table;
}

std::vector<BuiltinCampaign> builtin_campaigns() {
  return {{"fig03", "Figure 3: simulated vs predicted overhead as C grows"},
          {"fig07", "Figure 7: overhead vs individual MTBF"},
          {"validate", "sim-vs-model relative errors across a (b, mu, C) grid"}};
}

}  // namespace repcheck::campaign
