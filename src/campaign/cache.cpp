#include "campaign/cache.hpp"

#include <stdexcept>
#include <utility>

#include "prng/splitmix64.hpp"
#include "telemetry/telemetry.hpp"
#include "util/canonical_key.hpp"
#include "util/failpoint.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace repcheck::campaign {

namespace fp = util::failpoint;

namespace {

// Store health series ("campaign.cache.*" / "campaign.journal.*" in
// docs/OBSERVABILITY.md).  Store I/O is flush-bound, so interning the
// counter name per call is noise; no static handles needed here.
void count_store_event(std::string_view store, std::string_view event, std::uint64_t n = 1) {
  if (n == 0 || !telemetry::enabled()) return;
  std::string name = "campaign.";
  name += store;
  name += '.';
  name += event;
  telemetry::counter(name).inc(n);
}

}  // namespace

std::uint64_t point_hash(const SweepPoint& point) { return util::fnv1a64(point.canonical()); }

std::uint64_t derive_point_seed(std::uint64_t master_seed, const SweepPoint& point) {
  prng::SplitMix64 mix(master_seed ^ point_hash(point));
  (void)mix();  // decorrelate nearby hashes, mirroring derive_run_seed
  return mix();
}

namespace {

util::CanonicalKey key_payload(const SweepPoint& point, std::uint64_t master_seed,
                               std::string_view engine_version) {
  util::CanonicalKey key(point.canonical());
  key.add("seed", master_seed).add("engine", engine_version);
  return key;
}

// uint64 seeds don't fit a JSON double losslessly; store them as strings.
std::string seed_to_string(std::uint64_t seed) { return std::to_string(seed); }

void put_stat(util::JsonObject& record, const std::string& name,
              const stats::RunningStats& stat) {
  const auto s = stat.state();
  record["m." + name + ".count"] = static_cast<double>(s.count);
  record["m." + name + ".mean"] = s.mean;
  record["m." + name + ".m2"] = s.m2;
  record["m." + name + ".min"] = s.min;
  record["m." + name + ".max"] = s.max;
}

stats::RunningStats get_stat(const util::JsonObject& record, const std::string& name) {
  const auto field = [&](const char* suffix) -> double {
    const auto it = record.find("m." + name + "." + suffix);
    if (it == record.end()) {
      throw std::invalid_argument("cache record missing metric field m." + name + "." + suffix);
    }
    const auto* d = std::get_if<double>(&it->second);
    if (d == nullptr) {
      throw std::invalid_argument("cache metric m." + name + "." + suffix + " is not numeric");
    }
    return *d;
  };
  stats::MomentState s;
  s.count = static_cast<std::uint64_t>(field("count"));
  s.mean = field("mean");
  s.m2 = field("m2");
  s.min = field("min");
  s.max = field("max");
  return stats::RunningStats::from_state(s);
}

// The summary fields, enumerated once for both directions.
template <typename Summary, typename Fn>
void for_each_stat(Summary& summary, Fn&& fn) {
  fn("overhead", summary.overhead);
  fn("makespan", summary.makespan);
  fn("useful_time", summary.useful_time);
  fn("checkpoints", summary.checkpoints);
  fn("restart_checkpoints", summary.restart_checkpoints);
  fn("fatal_failures", summary.fatal_failures);
  fn("failures_seen", summary.failures_seen);
  fn("procs_restarted", summary.procs_restarted);
  fn("dead_at_checkpoint", summary.dead_at_checkpoint);
  fn("io_gbytes", summary.io_gbytes);
  fn("energy_overhead", summary.energy_overhead);
}

/// One damaged line, appended verbatim to the store's quarantine file so
/// nothing is destroyed — an operator (or a bug report) can still inspect
/// the bytes.  Opened lazily: healthy loads create no quarantine file.
class QuarantineWriter {
 public:
  explicit QuarantineWriter(const std::filesystem::path& store_file)
      : path_(store_file.empty() ? std::filesystem::path{} : quarantine_path(store_file)) {}

  void put(const std::string& line) {
    ++count_;
    if (path_.empty()) return;
    if (!out_.is_open()) {
      out_.open(path_, std::ios::app);
      if (!out_) return;  // quarantine is best-effort; the WARN still fires
    }
    out_ << line << '\n';
    out_.flush();
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  std::size_t count_ = 0;
};

struct LoadedStore {
  std::map<std::string, util::JsonObject> records;
  LoadStats stats;
};

/// Loads a JSONL store, verifying each record's checksum.  Damaged lines
/// (unparseable, missing/empty key, checksum mismatch) are quarantined and
/// WARN-logged; records written before checksumming count as legacy.
LoadedStore load_jsonl_map(const std::filesystem::path& path, std::string_view key_field) {
  LoadedStore store;
  std::ifstream in(path);
  if (!in) return store;
  QuarantineWriter quarantine(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto record = util::parse_jsonl(line);
    if (!record) {
      // Unparseable: bit rot, or the truncated final line a killed writer
      // leaves behind.  Either way it is damage — move it aside.
      quarantine.put(line);
      continue;
    }
    const auto sum_it = record->find(kChecksumField);
    if (sum_it == record->end()) {
      ++store.stats.legacy;  // pre-checksum record; fsck upgrades these
    } else {
      const auto* stored = std::get_if<std::string>(&sum_it->second);
      const std::string stored_sum = stored != nullptr ? *stored : std::string{};
      record->erase(sum_it);
      if (stored_sum != record_checksum(*record)) {
        quarantine.put(line);
        continue;
      }
    }
    const auto it = record->find(key_field);
    if (it == record->end()) {
      quarantine.put(line);
      continue;
    }
    const auto* key = std::get_if<std::string>(&it->second);
    if (key == nullptr || key->empty()) {
      quarantine.put(line);
      continue;
    }
    ++store.stats.loaded;
    store.records.insert_or_assign(*key, std::move(*record));
  }
  store.stats.quarantined = quarantine.count();
  if (store.stats.quarantined > 0) {
    util::log_warn() << "store " << path.string() << ": quarantined " << store.stats.quarantined
                     << " damaged record(s) to " << quarantine.path().string()
                     << " (kept " << store.stats.loaded
                     << "); run repcheck_campaign --fsck to compact";
  }
  if (store.stats.legacy > 0) {
    util::log_info() << "store " << path.string() << ": " << store.stats.legacy
                     << " legacy record(s) without checksum (fsck upgrades them)";
  }
  return store;
}

std::ofstream open_append(const std::filesystem::path& path, std::string_view store) {
  if (fp::armed_count() != 0 &&
      fp::fires("campaign." + std::string(store) + ".open")) {
    throw StoreWriteError("campaign " + std::string(store) + " open failed for " + path.string() +
                          " (injected fault)");
  }
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::app);
  if (!out) {
    throw StoreWriteError("cannot open campaign " + std::string(store) + " for append: " +
                          path.string());
  }
  return out;
}

/// Appends one already-checksummed record line, honoring the store's
/// failpoints, and verifies the stream accepted it.  `store` is "cache" or
/// "journal" — it names both the failpoint sites and the error message.
/// `dirty` remembers a previously failed append: the next append then
/// starts with a newline so a torn half-line cannot swallow the following
/// healthy record (the loader skips the resulting blank line).
void append_line(std::ofstream& out, bool& dirty, const std::filesystem::path& file,
                 std::string_view store, const std::string& key, std::string line) {
  if (dirty) {
    out << '\n';
    dirty = false;
  }
  if (fp::armed_count() != 0) {
    const std::string prefix = "campaign." + std::string(store);
    if (fp::fires(prefix + ".torn_write")) {
      // The footprint of a writer killed mid-append: half a line, no
      // newline, then the process is gone.
      out << line.substr(0, line.size() / 2);
      out.flush();
      dirty = true;
      count_store_event("store", "append_errors");
      throw StoreWriteError("campaign " + std::string(store) + " torn write for key " + key +
                            " at " + file.string() + " (injected fault)");
    }
    if (fp::fires(prefix + ".corrupt_record")) {
      // Flip one digit of the payload (bit rot after the checksum was
      // computed): the line stays parseable JSON but fails verification.
      const std::size_t at = line.find_first_of("0123456789");
      if (at != std::string::npos) line[at] = line[at] == '9' ? '0' : line[at] + 1;
    }
  }
  out << line << '\n';
  out.flush();  // a kill now costs at most the in-flight shard
  if (fp::armed_count() != 0 &&
      fp::fires("campaign." + std::string(store) + ".append_fail")) {
    out.setstate(std::ios::failbit);
  }
  if (!out) {
    out.clear();  // keep the stream usable in case the condition clears
    dirty = true;
    count_store_event("store", "append_errors");
    throw StoreWriteError("campaign " + std::string(store) + " append failed for key " + key +
                          " at " + file.string() +
                          " (disk full?); the record did not persist");
  }
  count_store_event(store, "appends");
}

}  // namespace

std::string point_key(const SweepPoint& point, std::uint64_t master_seed,
                      std::string_view engine_version) {
  return key_payload(point, master_seed, engine_version).hex();
}

std::string shard_key(const SweepPoint& point, std::uint64_t master_seed, std::uint64_t begin,
                      std::uint64_t end, std::string_view engine_version) {
  return key_payload(point, master_seed, engine_version).add_range("shard", begin, end).hex();
}

util::JsonObject summary_to_json(const sim::MonteCarloSummary& summary) {
  util::JsonObject record;
  for_each_stat(summary, [&](const char* name, const stats::RunningStats& stat) {
    put_stat(record, name, stat);
  });
  record["m.runs"] = static_cast<double>(summary.runs);
  record["m.stalled_runs"] = static_cast<double>(summary.stalled_runs);
  return record;
}

sim::MonteCarloSummary summary_from_json(const util::JsonObject& record) {
  sim::MonteCarloSummary summary;
  for_each_stat(summary, [&](const char* name, stats::RunningStats& stat) {
    stat = get_stat(record, name);
  });
  const auto scalar = [&](const char* name) -> std::uint64_t {
    const auto it = record.find(std::string("m.") + name);
    if (it == record.end()) throw std::invalid_argument("cache record missing m." + std::string(name));
    const auto* d = std::get_if<double>(&it->second);
    if (d == nullptr) throw std::invalid_argument("cache scalar not numeric");
    return static_cast<std::uint64_t>(*d);
  };
  summary.runs = scalar("runs");
  summary.stalled_runs = scalar("stalled_runs");
  return summary;
}

std::string record_checksum(const util::JsonObject& record) {
  const auto it = record.find(kChecksumField);
  if (it == record.end()) return util::content_hash_hex(util::to_jsonl(record));
  util::JsonObject copy = record;
  copy.erase(std::string(kChecksumField));
  return util::content_hash_hex(util::to_jsonl(copy));
}

std::filesystem::path quarantine_path(const std::filesystem::path& store_file) {
  auto path = store_file;
  path.replace_extension();
  path += ".quarantine";
  path += store_file.extension();
  return path;
}

FsckReport fsck_store(const std::filesystem::path& file, std::string_view key_field) {
  FsckReport report;
  report.file = file;
  if (file.empty() || !std::filesystem::exists(file)) return report;
  report.bytes_before = std::filesystem::file_size(file);

  auto store = load_jsonl_map(file, key_field);
  report.quarantined = store.stats.quarantined;
  report.legacy_upgraded = store.stats.legacy;
  report.kept = store.records.size();

  // Rewrite-then-rename: the original file stays intact until the
  // compacted replacement is fully flushed.
  const auto tmp = std::filesystem::path(file.string() + ".fsck-tmp");
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw StoreWriteError("fsck: cannot open temp file " + tmp.string());
    for (auto& [key, record] : store.records) {
      record[std::string(kChecksumField)] = record_checksum(record);
      out << util::to_jsonl(record) << '\n';
    }
    out.flush();
    if (!out) throw StoreWriteError("fsck: write to temp file failed: " + tmp.string());
  }
  std::filesystem::rename(tmp, file);
  report.bytes_after = std::filesystem::file_size(file);
  return report;
}

ResultCache::ResultCache(const std::filesystem::path& dir) {
  if (dir.empty()) return;
  std::filesystem::create_directories(dir);
  file_ = dir / "cache.jsonl";
  auto store = load_jsonl_map(file_, "key");
  records_ = std::move(store.records);
  load_stats_ = store.stats;
  count_store_event("cache", "records_loaded", load_stats_.loaded);
  count_store_event("cache", "quarantined", load_stats_.quarantined);
  count_store_event("cache", "legacy_records", load_stats_.legacy);
  out_ = open_append(file_, "cache");
}

std::optional<sim::MonteCarloSummary> ResultCache::lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return summary_from_json(it->second);
}

bool ResultCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.find(key) != records_.end();
}

void ResultCache::insert(const std::string& key, const SweepPoint& point, std::uint64_t seed,
                         std::uint64_t begin, std::uint64_t end,
                         const sim::MonteCarloSummary& summary) {
  auto record = summary_to_json(summary);
  record["key"] = key;
  record["point"] = point.canonical();
  record["seed"] = seed_to_string(seed);
  record["begin"] = static_cast<double>(begin);
  record["end"] = static_cast<double>(end);
  record["engine"] = std::string(kEngineVersion);
  record[std::string(kChecksumField)] = record_checksum(record);
  std::string line = util::to_jsonl(record);
  std::lock_guard<std::mutex> lock(mutex_);
  records_.insert_or_assign(key, std::move(record));
  if (out_.is_open()) append_line(out_, dirty_, file_, "cache", key, std::move(line));
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

Journal::Journal(const std::filesystem::path& path) {
  if (path.empty()) return;
  file_ = path;
  auto store = load_jsonl_map(file_, "done_key");
  done_ = std::move(store.records);
  load_stats_ = store.stats;
  count_store_event("journal", "records_loaded", load_stats_.loaded);
  count_store_event("journal", "quarantined", load_stats_.quarantined);
  count_store_event("journal", "legacy_records", load_stats_.legacy);
  out_ = open_append(file_, "journal");
}

std::optional<sim::MonteCarloSummary> Journal::completed(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = done_.find(key);
  if (it == done_.end()) return std::nullopt;
  return summary_from_json(it->second);
}

void Journal::mark_done(const std::string& key, const SweepPoint& point,
                        const sim::MonteCarloSummary& summary) {
  auto record = summary_to_json(summary);
  record["done_key"] = key;
  record["point"] = point.canonical();
  record["engine"] = std::string(kEngineVersion);
  record[std::string(kChecksumField)] = record_checksum(record);
  std::string line = util::to_jsonl(record);
  std::lock_guard<std::mutex> lock(mutex_);
  done_.insert_or_assign(key, std::move(record));
  if (out_.is_open()) append_line(out_, dirty_, file_, "journal", key, std::move(line));
}

std::size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_.size();
}

}  // namespace repcheck::campaign
