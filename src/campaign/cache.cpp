#include "campaign/cache.hpp"

#include <stdexcept>
#include <utility>

#include "prng/splitmix64.hpp"
#include "util/hash.hpp"

namespace repcheck::campaign {

std::uint64_t point_hash(const SweepPoint& point) { return util::fnv1a64(point.canonical()); }

std::uint64_t derive_point_seed(std::uint64_t master_seed, const SweepPoint& point) {
  prng::SplitMix64 mix(master_seed ^ point_hash(point));
  (void)mix();  // decorrelate nearby hashes, mirroring derive_run_seed
  return mix();
}

namespace {

std::string key_payload(const SweepPoint& point, std::uint64_t master_seed,
                        std::string_view engine_version) {
  std::string payload = point.canonical();
  payload += "|seed=";
  payload += std::to_string(master_seed);
  payload += "|engine=";
  payload += engine_version;
  return payload;
}

// uint64 seeds don't fit a JSON double losslessly; store them as strings.
std::string seed_to_string(std::uint64_t seed) { return std::to_string(seed); }

void put_stat(util::JsonObject& record, const std::string& name,
              const stats::RunningStats& stat) {
  const auto s = stat.state();
  record["m." + name + ".count"] = static_cast<double>(s.count);
  record["m." + name + ".mean"] = s.mean;
  record["m." + name + ".m2"] = s.m2;
  record["m." + name + ".min"] = s.min;
  record["m." + name + ".max"] = s.max;
}

stats::RunningStats get_stat(const util::JsonObject& record, const std::string& name) {
  const auto field = [&](const char* suffix) -> double {
    const auto it = record.find("m." + name + "." + suffix);
    if (it == record.end()) {
      throw std::invalid_argument("cache record missing metric field m." + name + "." + suffix);
    }
    const auto* d = std::get_if<double>(&it->second);
    if (d == nullptr) {
      throw std::invalid_argument("cache metric m." + name + "." + suffix + " is not numeric");
    }
    return *d;
  };
  stats::MomentState s;
  s.count = static_cast<std::uint64_t>(field("count"));
  s.mean = field("mean");
  s.m2 = field("m2");
  s.min = field("min");
  s.max = field("max");
  return stats::RunningStats::from_state(s);
}

// The summary fields, enumerated once for both directions.
template <typename Summary, typename Fn>
void for_each_stat(Summary& summary, Fn&& fn) {
  fn("overhead", summary.overhead);
  fn("makespan", summary.makespan);
  fn("useful_time", summary.useful_time);
  fn("checkpoints", summary.checkpoints);
  fn("restart_checkpoints", summary.restart_checkpoints);
  fn("fatal_failures", summary.fatal_failures);
  fn("failures_seen", summary.failures_seen);
  fn("procs_restarted", summary.procs_restarted);
  fn("dead_at_checkpoint", summary.dead_at_checkpoint);
  fn("io_gbytes", summary.io_gbytes);
  fn("energy_overhead", summary.energy_overhead);
}

std::map<std::string, util::JsonObject> load_jsonl_map(const std::filesystem::path& path,
                                                       std::string_view key_field) {
  std::map<std::string, util::JsonObject> records;
  std::ifstream in(path);
  if (!in) return records;
  std::string line;
  while (std::getline(in, line)) {
    // A killed writer leaves at most one truncated line; parse_jsonl
    // rejects it (and any other damage) and we simply skip.
    auto record = util::parse_jsonl(line);
    if (!record) continue;
    const auto it = record->find(key_field);
    if (it == record->end()) continue;
    const auto* key = std::get_if<std::string>(&it->second);
    if (key == nullptr || key->empty()) continue;
    records.insert_or_assign(*key, std::move(*record));
  }
  return records;
}

std::ofstream open_append(const std::filesystem::path& path) {
  if (path.has_parent_path()) std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::app);
  if (!out) throw std::runtime_error("cannot open for append: " + path.string());
  return out;
}

}  // namespace

std::string point_key(const SweepPoint& point, std::uint64_t master_seed,
                      std::string_view engine_version) {
  return util::content_hash_hex(key_payload(point, master_seed, engine_version));
}

std::string shard_key(const SweepPoint& point, std::uint64_t master_seed, std::uint64_t begin,
                      std::uint64_t end, std::string_view engine_version) {
  std::string payload = key_payload(point, master_seed, engine_version);
  payload += "|shard=";
  payload += std::to_string(begin);
  payload += '-';
  payload += std::to_string(end);
  return util::content_hash_hex(payload);
}

util::JsonObject summary_to_json(const sim::MonteCarloSummary& summary) {
  util::JsonObject record;
  for_each_stat(summary, [&](const char* name, const stats::RunningStats& stat) {
    put_stat(record, name, stat);
  });
  record["m.runs"] = static_cast<double>(summary.runs);
  record["m.stalled_runs"] = static_cast<double>(summary.stalled_runs);
  return record;
}

sim::MonteCarloSummary summary_from_json(const util::JsonObject& record) {
  sim::MonteCarloSummary summary;
  for_each_stat(summary, [&](const char* name, stats::RunningStats& stat) {
    stat = get_stat(record, name);
  });
  const auto scalar = [&](const char* name) -> std::uint64_t {
    const auto it = record.find(std::string("m.") + name);
    if (it == record.end()) throw std::invalid_argument("cache record missing m." + std::string(name));
    const auto* d = std::get_if<double>(&it->second);
    if (d == nullptr) throw std::invalid_argument("cache scalar not numeric");
    return static_cast<std::uint64_t>(*d);
  };
  summary.runs = scalar("runs");
  summary.stalled_runs = scalar("stalled_runs");
  return summary;
}

ResultCache::ResultCache(const std::filesystem::path& dir) {
  if (dir.empty()) return;
  std::filesystem::create_directories(dir);
  file_ = dir / "cache.jsonl";
  records_ = load_jsonl_map(file_, "key");
  out_ = open_append(file_);
}

std::optional<sim::MonteCarloSummary> ResultCache::lookup(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return summary_from_json(it->second);
}

bool ResultCache::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.find(key) != records_.end();
}

void ResultCache::insert(const std::string& key, const SweepPoint& point, std::uint64_t seed,
                         std::uint64_t begin, std::uint64_t end,
                         const sim::MonteCarloSummary& summary) {
  auto record = summary_to_json(summary);
  record["key"] = key;
  record["point"] = point.canonical();
  record["seed"] = seed_to_string(seed);
  record["begin"] = static_cast<double>(begin);
  record["end"] = static_cast<double>(end);
  record["engine"] = std::string(kEngineVersion);
  const std::string line = util::to_jsonl(record);
  std::lock_guard<std::mutex> lock(mutex_);
  records_.insert_or_assign(key, std::move(record));
  if (out_.is_open()) {
    out_ << line << '\n';
    out_.flush();  // a kill now costs at most the in-flight shard
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

Journal::Journal(const std::filesystem::path& path) {
  if (path.empty()) return;
  file_ = path;
  done_ = load_jsonl_map(file_, "done_key");
  out_ = open_append(file_);
}

std::optional<sim::MonteCarloSummary> Journal::completed(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = done_.find(key);
  if (it == done_.end()) return std::nullopt;
  return summary_from_json(it->second);
}

void Journal::mark_done(const std::string& key, const SweepPoint& point,
                        const sim::MonteCarloSummary& summary) {
  auto record = summary_to_json(summary);
  record["done_key"] = key;
  record["point"] = point.canonical();
  record["engine"] = std::string(kEngineVersion);
  const std::string line = util::to_jsonl(record);
  std::lock_guard<std::mutex> lock(mutex_);
  done_.insert_or_assign(key, std::move(record));
  if (out_.is_open()) {
    out_ << line << '\n';
    out_.flush();
  }
}

std::size_t Journal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_.size();
}

}  // namespace repcheck::campaign
