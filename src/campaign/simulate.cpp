#include "campaign/simulate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "failures/exponential_source.hpp"
#include "model/mtti.hpp"
#include "model/periods.hpp"
#include "model/units.hpp"
#include "platform/cost.hpp"
#include "platform/platform.hpp"

namespace repcheck::campaign {

namespace {

struct PointConfig {
  std::uint64_t n = 0;      ///< platform size
  std::uint64_t b = 0;      ///< replica pairs (n/2)
  double mu = 0.0;          ///< individual MTBF, seconds
  double c = 0.0;           ///< checkpoint cost C
  double cr_over_c = 1.0;   ///< C^R / C
  std::string strategy;     ///< restart | no-restart | no-replication
  std::string period_rule;  ///< t_opt_rs | t_mtti_no | young_daly | fixed
  std::uint64_t periods = 100;
};

PointConfig parse_point(const SweepPoint& point) {
  PointConfig cfg;
  cfg.n = static_cast<std::uint64_t>(point.get_int("procs"));
  cfg.b = cfg.n / 2;
  cfg.mu = model::years(point.get_double("mtbf_years"));
  cfg.c = point.get_double("c");
  cfg.cr_over_c = point.get_double("cr_over_c", 1.0);
  cfg.strategy = point.get_string("strategy", "restart");
  cfg.period_rule = point.get_string("period_rule", "t_opt_rs");
  cfg.periods = static_cast<std::uint64_t>(point.get_int("periods", 100));
  if (cfg.n == 0) throw std::invalid_argument("sweep point needs procs > 0");
  if (cfg.mu <= 0.0) throw std::invalid_argument("sweep point needs mtbf_years > 0");
  if (cfg.c <= 0.0) throw std::invalid_argument("sweep point needs c > 0");
  return cfg;
}

double period_for(const PointConfig& cfg, const SweepPoint& point) {
  if (cfg.period_rule == "t_opt_rs") return model::t_opt_rs(cfg.cr_over_c * cfg.c, cfg.b, cfg.mu);
  if (cfg.period_rule == "t_mtti_no") return model::t_mtti_no(cfg.c, cfg.b, cfg.mu);
  if (cfg.period_rule == "young_daly") {
    return model::young_daly_period_parallel(cfg.c, cfg.mu, cfg.n);
  }
  if (cfg.period_rule == "fixed") return point.get_double("period");
  throw std::invalid_argument("unknown period_rule '" + cfg.period_rule + "'");
}

sim::StrategySpec strategy_for(const PointConfig& cfg, double t) {
  if (cfg.strategy == "restart") return sim::StrategySpec::restart(t);
  if (cfg.strategy == "no-restart") return sim::StrategySpec::no_restart(t);
  if (cfg.strategy == "no-replication") return sim::StrategySpec::no_replication(t);
  throw std::invalid_argument("unknown strategy '" + cfg.strategy + "'");
}

sim::SimConfig sim_config_for(const SweepPoint& point) {
  const auto cfg = parse_point(point);
  const double t = period_for(cfg, point);
  sim::SimConfig config;
  config.platform = cfg.strategy == "no-replication"
                        ? platform::Platform::not_replicated(cfg.n)
                        : platform::Platform::fully_replicated(cfg.n);
  config.cost = platform::CostModel::uniform(cfg.c, cfg.cr_over_c);
  config.strategy = strategy_for(cfg, t);
  config.spec.mode = sim::RunSpec::Mode::kFixedPeriods;
  config.spec.n_periods = cfg.periods;
  return config;
}

}  // namespace

double resolve_period(const SweepPoint& point) {
  const auto cfg = parse_point(point);
  return period_for(cfg, point);
}

std::uint64_t standard_runs_for(const SweepPoint& point) {
  const auto runs = static_cast<std::uint64_t>(point.get_int("runs", 60));
  const auto rule = point.get_string("runs_rule", "fixed");
  if (rule == "fixed") return runs;
  if (rule == "crash300") {
    // Crashes are the noisy term: scale the replicate count so every point
    // sees a few hundred of them.  Expected crashes per run: periods ×
    // b(λT)² for restart, periods × T/M for no-restart.
    const auto cfg = parse_point(point);
    const double t = period_for(cfg, point);
    const double lambda = 1.0 / cfg.mu;
    double crash_prob_per_period = 0.0;
    if (cfg.strategy == "restart") {
      crash_prob_per_period = static_cast<double>(cfg.b) * lambda * lambda * t * t;
    } else {
      crash_prob_per_period = t / model::mtti(cfg.b, cfg.mu);
    }
    const double per_run = static_cast<double>(cfg.periods) * crash_prob_per_period;
    const double needed = 300.0 / std::max(per_run, 1e-9);
    return std::max(runs, std::min<std::uint64_t>(50000,
                                                  static_cast<std::uint64_t>(needed) + 1));
  }
  throw std::invalid_argument("unknown runs_rule '" + rule + "'");
}

sim::MonteCarloSummary simulate_standard_point(const SweepPoint& point, std::uint64_t begin,
                                               std::uint64_t end, std::uint64_t seed) {
  const auto config = sim_config_for(point);
  const auto cfg = parse_point(point);
  const auto factory = [n = cfg.n, mu = cfg.mu] {
    return std::unique_ptr<failures::FailureSource>(
        std::make_unique<failures::ExponentialFailureSource>(n, mu));
  };
  return sim::run_monte_carlo_range(config, factory, begin, end, seed);
}

PointEvaluator standard_evaluator() {
  PointEvaluator evaluator;
  evaluator.runs_for = standard_runs_for;
  evaluator.simulate = simulate_standard_point;
  return evaluator;
}

double overhead_mean(const sim::MonteCarloSummary& summary) {
  return summary.overhead.count() > 0 ? summary.overhead.mean()
                                      : std::numeric_limits<double>::quiet_NaN();
}

}  // namespace repcheck::campaign
