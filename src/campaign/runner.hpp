// CampaignRunner: schedules sweep points × Monte-Carlo shards over the
// thread pool, with content-addressed caching and checkpoint/resume.
//
// Execution model:
//   * every point gets a deterministic seed (SplitMix64 on the point hash),
//     independent of point order and thread count;
//   * a point's replicates are cut into fixed shards (the shard plan
//     depends only on the replicate count — never on the thread count —
//     so cache keys are stable);
//   * completed shards append to the ResultCache, completed points to the
//     Journal, both flushed line-by-line: a killed campaign resumes losing
//     at most the in-flight shard;
//   * per-point summaries are merged from the (round-tripped) shard
//     records in shard order, so a resumed campaign is bit-identical to an
//     uninterrupted one with the same master seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/sweep.hpp"
#include "core/montecarlo.hpp"
#include "util/thread_pool.hpp"

namespace repcheck::campaign {

/// How the runner turns a sweep point into numbers.  Both callbacks must be
/// deterministic and thread-safe (they run concurrently on pool workers).
struct PointEvaluator {
  /// Effective Monte-Carlo replicate count for a point (>= 1).
  std::function<std::uint64_t(const SweepPoint&)> runs_for;
  /// Simulates replicate indices [begin, end) under the point's seed.
  std::function<sim::MonteCarloSummary(const SweepPoint&, std::uint64_t begin, std::uint64_t end,
                                       std::uint64_t seed)>
      simulate;
};

struct RunnerOptions {
  std::uint64_t master_seed = 42;
  /// Replicates per shard; 0 = auto (~runs/16, at least 1).  Part of the
  /// cache key via the shard ranges, so keep it fixed across reruns.
  std::uint64_t shard_size = 0;
  std::string cache_dir;     ///< empty = in-memory cache only
  std::string journal_path;  ///< empty = no journal
  util::ThreadPool* pool = nullptr;  ///< null = serial execution
  bool progress = true;              ///< progress/ETA reporter on stderr
  std::string engine_version{kEngineVersion};
};

struct PointOutcome {
  SweepPoint point;
  std::string key;         ///< point_key (journal granularity)
  std::uint64_t seed = 0;  ///< derived point seed
  sim::MonteCarloSummary summary;
  std::uint64_t shards = 0;
  std::uint64_t cached_shards = 0;  ///< shards served from the cache
  bool from_journal = false;        ///< whole point served from the journal
};

struct CampaignStats {
  std::uint64_t points = 0;
  std::uint64_t journal_points = 0;
  std::uint64_t shards_total = 0;
  std::uint64_t shards_cached = 0;
  std::uint64_t shards_simulated = 0;
  double seconds = 0.0;
};

struct CampaignResult {
  std::vector<PointOutcome> points;  ///< in SweepSpec::expand() order
  CampaignStats stats;

  [[nodiscard]] const PointOutcome* find(const SweepPoint& point) const;
  /// Throws std::out_of_range when the point is not part of the campaign.
  [[nodiscard]] const sim::MonteCarloSummary& at(const SweepPoint& point) const;
};

class CampaignRunner {
 public:
  CampaignRunner(SweepSpec spec, PointEvaluator evaluator, RunnerOptions options = {});

  /// Runs (or resumes) the campaign.  Exceptions from the evaluator
  /// propagate after in-flight shards settle; everything completed up to
  /// that moment is already persisted, so a rerun resumes.
  [[nodiscard]] CampaignResult run();

 private:
  SweepSpec spec_;
  PointEvaluator evaluator_;
  RunnerOptions options_;
};

}  // namespace repcheck::campaign
