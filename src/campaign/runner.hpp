// CampaignRunner: schedules sweep points × Monte-Carlo shards over the
// thread pool, with content-addressed caching, checkpoint/resume, shard
// error isolation and graceful drain.
//
// Execution model:
//   * every point gets a deterministic seed (SplitMix64 on the point hash),
//     independent of point order and thread count;
//   * a point's replicates are cut into fixed shards (the shard plan
//     depends only on the replicate count — never on the thread count —
//     so cache keys are stable);
//   * completed shards append to the ResultCache, completed points to the
//     Journal, both flushed line-by-line: a killed campaign resumes losing
//     at most the in-flight shard;
//   * per-point summaries are merged from the (round-tripped) shard
//     records in shard order, so a resumed campaign is bit-identical to an
//     uninterrupted one with the same master seed.
//
// Failure model:
//   * a shard whose evaluator (or store append) throws is retried up to
//     max_retries times with exponential backoff, then its point is marked
//     PointStatus::kFailed carrying the error text — run() completes every
//     healthy point and returns instead of propagating;
//   * setting *options.stop (e.g. from a SIGINT/SIGTERM handler, see
//     util/interrupt.hpp) drains the run: in-flight shards finish and
//     flush, queued shards are skipped, their points come back
//     PointStatus::kIncomplete, and the journal/cache stay resumable;
//   * a journal append failure downgrades to stats.store_errors (the
//     result is still correct in memory; only resumability is impaired).
// CampaignResult::ok() is false whenever any of this happened — CLI
// callers should exit nonzero on !ok().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/sweep.hpp"
#include "core/montecarlo.hpp"
#include "util/thread_pool.hpp"

namespace repcheck::campaign {

/// How the runner turns a sweep point into numbers.  Both callbacks must be
/// deterministic and thread-safe (they run concurrently on pool workers).
struct PointEvaluator {
  /// Effective Monte-Carlo replicate count for a point (>= 1).
  std::function<std::uint64_t(const SweepPoint&)> runs_for;
  /// Simulates replicate indices [begin, end) under the point's seed.
  std::function<sim::MonteCarloSummary(const SweepPoint&, std::uint64_t begin, std::uint64_t end,
                                       std::uint64_t seed)>
      simulate;
};

struct RunnerOptions {
  std::uint64_t master_seed = 42;
  /// Replicates per shard; 0 = auto (~runs/16, at least 1).  Part of the
  /// cache key via the shard ranges, so keep it fixed across reruns.
  std::uint64_t shard_size = 0;
  std::string cache_dir;     ///< empty = in-memory cache only
  std::string journal_path;  ///< empty = no journal
  util::ThreadPool* pool = nullptr;  ///< null = serial execution
  bool progress = true;              ///< progress/ETA reporter on stderr
  std::string engine_version{kEngineVersion};
  /// Extra attempts for a shard whose evaluator/store throws, with
  /// exponential backoff (retry_backoff_ms, doubling per attempt).
  std::uint32_t max_retries = 2;
  std::uint32_t retry_backoff_ms = 50;
  /// Graceful-drain flag, polled between shards; typically
  /// &util::install_drain_handler().  Null = never drain.
  const std::atomic<bool>* stop = nullptr;
};

enum class PointStatus {
  kOk,          ///< summary complete
  kFailed,      ///< a shard failed after retries; `error` has the cause
  kIncomplete,  ///< drained before all shards ran; resumable
};

struct PointOutcome {
  SweepPoint point;
  std::string key;         ///< point_key (journal granularity)
  std::uint64_t seed = 0;  ///< derived point seed
  sim::MonteCarloSummary summary;  ///< only meaningful when status == kOk
  std::uint64_t shards = 0;
  std::uint64_t cached_shards = 0;  ///< shards served from the cache
  bool from_journal = false;        ///< whole point served from the journal
  PointStatus status = PointStatus::kOk;
  std::string error;  ///< first shard error when status == kFailed
};

struct CampaignStats {
  std::uint64_t points = 0;
  std::uint64_t journal_points = 0;
  std::uint64_t shards_total = 0;
  std::uint64_t shards_cached = 0;
  std::uint64_t shards_simulated = 0;  ///< successfully simulated this run
  std::uint64_t shards_failed = 0;     ///< gave up after retries
  std::uint64_t shard_retries = 0;     ///< retry attempts consumed
  std::uint64_t failed_points = 0;
  std::uint64_t incomplete_points = 0;
  std::uint64_t quarantined_records = 0;  ///< damaged store lines moved aside
  std::uint64_t store_errors = 0;  ///< journal appends that failed (non-fatal)
  bool drained = false;            ///< stop flag observed before completion
  double seconds = 0.0;
};

struct CampaignResult {
  std::vector<PointOutcome> points;  ///< in SweepSpec::expand() order
  CampaignStats stats;

  /// True when every point completed and nothing was drained or lost.
  [[nodiscard]] bool ok() const;

  /// O(log n) lookup via the canonical-key index run() builds; falls back
  /// to a linear scan for hand-assembled results without an index.
  [[nodiscard]] const PointOutcome* find(const SweepPoint& point) const;
  /// Throws std::out_of_range when the point is not part of the campaign.
  [[nodiscard]] const sim::MonteCarloSummary& at(const SweepPoint& point) const;

  /// (Re)builds the canonical-key index `find` uses.  run() calls this;
  /// call it again after mutating `points` by hand.
  void build_index();

 private:
  std::map<std::string, std::size_t, std::less<>> index_;  ///< canonical -> points idx
};

class CampaignRunner {
 public:
  CampaignRunner(SweepSpec spec, PointEvaluator evaluator, RunnerOptions options = {});

  /// Runs (or resumes) the campaign.  Evaluator/store failures do not
  /// propagate: they mark their point kFailed (see the failure model
  /// above) and run() still returns the other points.  Only setup errors
  /// (empty sweep, unopenable store) throw.
  [[nodiscard]] CampaignResult run();

 private:
  SweepSpec spec_;
  PointEvaluator evaluator_;
  RunnerOptions options_;
};

}  // namespace repcheck::campaign
