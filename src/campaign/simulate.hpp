// The standard point evaluator: maps a SweepPoint onto the simulator.
//
// Recognized parameters (see docs/CAMPAIGN.md for the full table):
//   procs        platform size N (int, required)
//   mtbf_years   individual MTBF in years (required)
//   c            checkpoint cost C in seconds (required)
//   cr_over_c    C^R / C ratio (default 1.0)
//   strategy     restart | no-restart | no-replication (default restart)
//   period_rule  t_opt_rs | t_mtti_no | young_daly | fixed (default t_opt_rs)
//   period       period T in seconds, required when period_rule = fixed
//   periods      checkpointing periods per run (default 100)
//   runs         Monte-Carlo replicates per point (default 60)
//   runs_rule    fixed | crash300 (default fixed); crash300 scales the
//                replicate count so every point sees ~300 app crashes
//                (the validate_accuracy protocol), capped at 50000
//
// Every extra parameter (e.g. a "variant" label) is inert for simulation
// but still part of the canonical point, i.e. of the cache key.
#pragma once

#include "campaign/runner.hpp"

namespace repcheck::campaign {

/// The period T the point's period_rule resolves to (renderers use this to
/// evaluate the analytic models at the simulated period).
[[nodiscard]] double resolve_period(const SweepPoint& point);

/// Effective replicate count after runs_rule scaling.
[[nodiscard]] std::uint64_t standard_runs_for(const SweepPoint& point);

/// Simulates replicate indices [begin, end) of the point.
[[nodiscard]] sim::MonteCarloSummary simulate_standard_point(const SweepPoint& point,
                                                             std::uint64_t begin,
                                                             std::uint64_t end,
                                                             std::uint64_t seed);

/// Bundles the two functions above.
[[nodiscard]] PointEvaluator standard_evaluator();

/// Mean simulated overhead; quiet NaN when the summary holds no samples
/// (all replicates stalled), so broken configs can't pose as measurements.
[[nodiscard]] double overhead_mean(const sim::MonteCarloSummary& summary);

}  // namespace repcheck::campaign
