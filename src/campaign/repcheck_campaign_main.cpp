// repcheck_campaign: run declarative sweeps with caching and resume.
//
//   repcheck_campaign --campaign fig03 --cache-dir results/cache
//   repcheck_campaign --campaign fig07 --journal results/cache/fig07.journal
//   repcheck_campaign --grid "c=60,600;mtbf_years=1,5,20"
//       --set "procs=200000;strategy=restart" --runs 30
//
// Built-in campaigns reproduce the migrated figure tables; --grid/--set
// build an ad-hoc cartesian sweep over the standard evaluator's parameters
// (see docs/CAMPAIGN.md).  Warm reruns with an unchanged spec, seed and
// cache directory are 100% cache hits and simulate nothing.
//
// Robustness (docs/CAMPAIGN.md "Failure model & recovery semantics"):
// evaluator faults are retried (--max-retries/--retry-backoff-ms) and then
// isolated to their point (exit 2 with a failure summary; healthy points
// still print); SIGINT/SIGTERM drains gracefully (in-flight shards finish
// and flush, exit 130, rerun resumes); --fsck verifies and compacts the
// cache/journal stores, quarantining damaged records.
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/figures.hpp"
#include "campaign/simulate.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "util/failpoint.hpp"
#include "util/flags.hpp"
#include "util/interrupt.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace repcheck;
using campaign::ParamValue;
using campaign::SweepSpec;

/// Splits "a=1,2;b=x" into axes, or "k=v;k2=v2" into single-value pairs.
std::vector<std::pair<std::string, std::vector<ParamValue>>> parse_assignments(
    const std::string& text, const char* what) {
  std::vector<std::pair<std::string, std::vector<ParamValue>>> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::string item =
        text.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? text.size() : semi + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument(std::string(what) + " entry '" + item +
                                  "' is not name=value[,value...]");
    }
    std::vector<ParamValue> values;
    std::size_t vpos = eq + 1;
    while (vpos <= item.size()) {
      const std::size_t comma = item.find(',', vpos);
      const std::string value =
          item.substr(vpos, comma == std::string::npos ? std::string::npos : comma - vpos);
      values.push_back(campaign::parse_param(value));
      if (comma == std::string::npos) break;
      vpos = comma + 1;
    }
    out.emplace_back(item.substr(0, eq), std::move(values));
  }
  return out;
}

util::Cell to_cell(const ParamValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) return *i;
  if (const auto* d = std::get_if<double>(&value)) return *d;
  return campaign::render_param(value);
}

/// Generic renderer for --grid sweeps: axis columns + overhead statistics.
/// Failed/incomplete points are omitted here — their empty accumulators have
/// no CI — and reported on stderr by print_failure_summary instead.
util::Table grid_render(const SweepSpec& spec, const campaign::CampaignResult& result) {
  std::vector<std::string> columns;
  for (const auto& axis : spec.axes) columns.push_back(axis.name);
  columns.insert(columns.end(), {"overhead", "ci95_lo", "ci95_hi", "runs", "stalled"});
  util::Table table(columns);
  for (const auto& outcome : result.points) {
    if (outcome.status != campaign::PointStatus::kOk) continue;
    std::vector<util::Cell> row;
    for (const auto& axis : spec.axes) {
      const auto* value = outcome.point.find(axis.name);
      row.push_back(value != nullptr ? to_cell(*value) : util::Cell{});
    }
    const auto ci = outcome.summary.overhead_ci();
    // emplace_back: construct the Cell variant in place.  push_back's
    // converting temporary trips a GCC-12 maybe-uninitialized false
    // positive under the sanitizer preset.
    row.emplace_back(campaign::overhead_mean(outcome.summary));
    row.emplace_back(ci.lo);
    row.emplace_back(ci.hi);
    row.emplace_back(static_cast<std::int64_t>(outcome.summary.runs));
    row.emplace_back(static_cast<std::int64_t>(outcome.summary.stalled_runs));
    table.add_row(std::move(row));
  }
  return table;
}

void list_campaigns() {
  std::cout << "built-in campaigns:\n";
  for (const auto& builtin : campaign::builtin_campaigns()) {
    std::cout << "  " << builtin.name << "  " << builtin.description << "\n";
  }
  std::cout << "or build one with --grid \"a=1,2;b=x,y\" [--set \"k=v;...\"]\n";
}

void print_fsck_report(const campaign::FsckReport& report) {
  std::fprintf(stderr,
               "[fsck] %s: kept %zu record(s), quarantined %zu, upgraded %zu legacy, "
               "%llu -> %llu bytes\n",
               report.file.string().c_str(), report.kept, report.quarantined,
               report.legacy_upgraded, static_cast<unsigned long long>(report.bytes_before),
               static_cast<unsigned long long>(report.bytes_after));
}

/// Verify + compact the cache (and journal, when given); exit 0 even when
/// damage was found — the point of fsck is that it *repaired* it.
int run_fsck(const std::string& cache_dir, const std::string& journal) {
  bool any = false;
  if (!cache_dir.empty()) {
    const auto file = std::filesystem::path(cache_dir) / "cache.jsonl";
    if (std::filesystem::exists(file)) {
      print_fsck_report(campaign::fsck_store(file, "key"));
      any = true;
    }
  }
  if (!journal.empty() && std::filesystem::exists(journal)) {
    print_fsck_report(campaign::fsck_store(journal, "done_key"));
    any = true;
  }
  if (!any) {
    std::fprintf(stderr, "fsck: nothing to check (no cache.jsonl under --cache-dir, no --journal)\n");
    return 1;
  }
  return 0;
}

/// One stderr line per unhealthy point, so a failed sweep names exactly
/// what is missing and why.
void print_failure_summary(const campaign::CampaignResult& result) {
  using campaign::PointStatus;
  if (result.stats.failed_points > 0) {
    std::fprintf(stderr, "[campaign] %llu point(s) FAILED:\n",
                 static_cast<unsigned long long>(result.stats.failed_points));
    for (const auto& outcome : result.points) {
      if (outcome.status != PointStatus::kFailed) continue;
      std::fprintf(stderr, "  %s: %s\n", outcome.point.canonical().c_str(),
                   outcome.error.c_str());
    }
  }
  if (result.stats.incomplete_points > 0) {
    std::fprintf(stderr,
                 "[campaign] %llu point(s) incomplete (drained); rerun with the same "
                 "--seed/--cache-dir/--journal to resume\n",
                 static_cast<unsigned long long>(result.stats.incomplete_points));
  }
  if (result.stats.store_errors > 0) {
    std::fprintf(stderr,
                 "[campaign] %llu journal append(s) failed — results above are complete but "
                 "a rerun may resimulate\n",
                 static_cast<unsigned long long>(result.stats.store_errors));
  }
}

void write_text_file(const std::string& path, const std::string& text, const char* what) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  out.flush();
  if (!out) throw std::runtime_error(std::string("cannot write ") + what + ": " + path);
}

/// Renders the run report (docs/OBSERVABILITY.md): the registry snapshot
/// plus per-site failpoint hit counts, tagged with the campaign identity.
std::string render_report(const std::string& campaign, std::uint64_t seed) {
  auto snapshot = telemetry::snapshot_metrics();
  for (const auto& site : util::failpoint::armed_sites()) {
    const std::uint64_t hits = util::failpoint::hit_count(site);
    if (hits > 0) snapshot.counters["failpoint." + site + ".hits"] = hits;
  }
  telemetry::ReportMeta meta;
  meta["campaign"] = campaign;
  meta["seed"] = std::to_string(seed);
  meta["engine"] = std::string(campaign::kEngineVersion);
  return telemetry::render_run_report(snapshot, meta);
}

/// WARN once at report time when span rings evicted events (exported
/// traces truncate; span counts stay exact).
void warn_on_span_drops() {
  const auto drops = telemetry::span_drop_stats();
  if (drops.dropped == 0) return;
  std::string names;
  for (const auto& [name, stat] : telemetry::snapshot_metrics().spans) {
    (void)stat;
    if (!names.empty()) names += ", ";
    names += name;
  }
  util::log_warn() << "telemetry: " << drops.dropped << " span event(s) evicted from "
                   << drops.threads_affected << " thread ring(s) (active spans: " << names
                   << "); exported traces are truncated but span counts remain exact";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::FlagSet flags("repcheck_campaign",
                        "declarative sweeps with a content-addressed cache and resume");
    const auto* campaign_name =
        flags.add_string("campaign", "", "built-in campaign (fig03 | fig07 | validate | list)");
    const auto* grid = flags.add_string("grid", "", "ad-hoc axes, e.g. \"c=60,600;mtbf_years=5\"");
    const auto* set = flags.add_string("set", "", "fixed parameters, e.g. \"procs=200000\"");
    const auto* runs = flags.add_int64("runs", 0, "override replicates per point");
    const auto* periods = flags.add_int64("periods", 0, "override periods per run");
    const auto* procs = flags.add_int64("procs", 0, "override platform size");
    const auto* mtbf_years = flags.add_double("mtbf-years", 0.0, "override individual MTBF");
    const auto* seed = flags.add_int64("seed", 42, "master seed (same seed => same numbers)");
    const auto* csv = flags.add_bool("csv", false, "emit CSV instead of aligned columns");
    const auto* cache_dir =
        flags.add_string("cache-dir", "results/cache", "result cache directory ('' = in-memory)");
    const auto* journal = flags.add_string("journal", "", "campaign journal file for resume");
    const auto* threads =
        flags.add_int64("threads", -1, "worker threads (-1 = hardware, 0 = serial)");
    const auto* shard_size = flags.add_int64("shard-size", 0, "replicates per shard (0 = auto)");
    const auto* no_progress = flags.add_bool("no-progress", false, "silence the stderr reporter");
    const auto* max_retries =
        flags.add_int64("max-retries", 2, "extra attempts for a shard whose evaluator fails");
    const auto* retry_backoff_ms =
        flags.add_int64("retry-backoff-ms", 50, "initial retry backoff (doubles per attempt)");
    const auto* fsck =
        flags.add_bool("fsck", false, "verify + compact --cache-dir / --journal stores and exit");
    const auto* metrics_out = flags.add_string(
        "metrics-out", "", "write a JSON run report (counters/spans/timings) to this file");
    const auto* trace_out = flags.add_string(
        "trace-out", "", "write a Chrome trace-event JSON (load in Perfetto) to this file");
    const auto* stats_interval_ms = flags.add_int64(
        "stats-interval-ms", 0, "emit a live one-line stats JSON to stderr this often (0 = off)");
    if (!flags.parse(argc, argv)) return 0;  // --help

    // Arm telemetry before any instrumented code runs, so store loads and
    // pool spin-up are captured too.  REPCHECK_TELEMETRY=1 also works.
    if (!metrics_out->empty() || !trace_out->empty() || *stats_interval_ms > 0) {
      telemetry::set_enabled(true);
    }

    if (*fsck) return run_fsck(*cache_dir, *journal);

    if ((campaign_name->empty() && grid->empty()) || *campaign_name == "list") {
      list_campaigns();
      return 0;
    }
    if (!campaign_name->empty() && !grid->empty()) {
      throw std::invalid_argument("--campaign and --grid are mutually exclusive");
    }

    SweepSpec spec;
    std::optional<util::Table (*)(const campaign::CampaignResult&)> figure_render;
    if (*campaign_name == "fig03") {
      campaign::Fig03Params params;
      if (flags.provided("procs")) params.procs = *procs;
      if (flags.provided("mtbf-years")) params.mtbf_years = *mtbf_years;
      if (flags.provided("runs")) params.runs = *runs;
      if (flags.provided("periods")) params.periods = *periods;
      spec = campaign::fig03_spec(params);
      figure_render = campaign::fig03_render;
    } else if (*campaign_name == "fig07") {
      campaign::Fig07Params params;
      if (flags.provided("procs")) params.procs = *procs;
      if (flags.provided("runs")) params.runs = *runs;
      if (flags.provided("periods")) params.periods = *periods;
      spec = campaign::fig07_spec(params);
      figure_render = campaign::fig07_render;
    } else if (*campaign_name == "validate") {
      campaign::ValidateParams params;
      if (flags.provided("runs")) params.runs = *runs;
      if (flags.provided("periods")) params.periods = *periods;
      spec = campaign::validate_spec(params);
      figure_render = campaign::validate_render;
    } else if (!campaign_name->empty()) {
      throw std::invalid_argument("unknown campaign '" + *campaign_name +
                                  "' (try --campaign list)");
    } else {
      spec.name = "grid";
      for (auto& [name, values] : parse_assignments(*set, "--set")) {
        if (values.size() != 1) {
          throw std::invalid_argument("--set entry '" + name + "' must have exactly one value");
        }
        spec.base.set(name, values.front());
      }
      for (auto& [name, values] : parse_assignments(*grid, "--grid")) {
        spec.axes.push_back({name, std::move(values)});
      }
      if (flags.provided("procs")) spec.base.set("procs", *procs);
      if (flags.provided("mtbf-years")) spec.base.set("mtbf_years", *mtbf_years);
      if (flags.provided("runs")) spec.base.set("runs", *runs);
      if (flags.provided("periods")) spec.base.set("periods", *periods);
    }

    campaign::RunnerOptions options;
    options.master_seed = static_cast<std::uint64_t>(*seed);
    options.shard_size = static_cast<std::uint64_t>(*shard_size);
    options.cache_dir = *cache_dir;
    options.journal_path = *journal;
    options.progress = !*no_progress;
    options.max_retries = static_cast<std::uint32_t>(*max_retries < 0 ? 0 : *max_retries);
    options.retry_backoff_ms =
        static_cast<std::uint32_t>(*retry_backoff_ms < 0 ? 0 : *retry_backoff_ms);
    options.stop = &util::install_drain_handler();
    std::unique_ptr<util::ThreadPool> own_pool;
    if (*threads < 0) {
      options.pool = &util::ThreadPool::shared();
    } else if (*threads > 0) {
      own_pool = std::make_unique<util::ThreadPool>(static_cast<std::size_t>(*threads));
      options.pool = own_pool.get();
    }

    campaign::CampaignRunner runner(spec, campaign::standard_evaluator(), options);
    telemetry::StatsEmitter stats_emitter(
        *stats_interval_ms > 0 ? static_cast<std::uint64_t>(*stats_interval_ms) : 0);
    const auto result = runner.run();
    const auto table = figure_render ? (*figure_render)(result) : grid_render(spec, result);
    table.print(std::cout, *csv);
    // Reports are written even for drained/failed runs — a run that went
    // wrong is exactly the one whose telemetry you want.
    if (telemetry::enabled()) warn_on_span_drops();
    if (!metrics_out->empty()) {
      write_text_file(*metrics_out, render_report(spec.name, options.master_seed), "run report");
    }
    if (!trace_out->empty()) {
      write_text_file(*trace_out, telemetry::render_chrome_trace(), "trace");
    }
    if (!result.ok()) {
      print_failure_summary(result);
      // 130 = interrupted (drain), 2 = completed with failed points.
      return result.stats.drained ? 130 : 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
