// Content-addressed result cache + campaign journal (checkpoint/resume).
//
// Cache keys address one Monte-Carlo *shard* (a contiguous replicate range
// of one sweep point): FNV-128 over the canonical point parameters, the
// campaign master seed, the engine version string, and the shard's
// replicate range.  Identical inputs therefore reuse identical results —
// across reruns, resumed runs, and unrelated campaigns sharing points —
// while any semantic change to the simulator is isolated by bumping
// kEngineVersion.
//
// Both stores are append-only JSONL, flushed line-by-line, and tolerate a
// truncated final line on load (the footprint of a killed writer), which
// is what bounds the cost of an interruption to the in-flight shard.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "campaign/sweep.hpp"
#include "core/montecarlo.hpp"
#include "util/jsonl.hpp"

namespace repcheck::campaign {

/// Stamped into every cache key and record.  Bump whenever simulator
/// semantics change so stale results stop matching.
inline constexpr std::string_view kEngineVersion = "repcheck-sim-v1";

/// FNV-1a of the canonical parameter string.
[[nodiscard]] std::uint64_t point_hash(const SweepPoint& point);

/// Per-point master seed: SplitMix64 over (campaign seed ⊕ point hash),
/// so each sweep point owns an independent, order-free seed stream.
[[nodiscard]] std::uint64_t derive_point_seed(std::uint64_t master_seed, const SweepPoint& point);

/// Content address of a whole point (journal granularity).
[[nodiscard]] std::string point_key(const SweepPoint& point, std::uint64_t master_seed,
                                    std::string_view engine_version = kEngineVersion);

/// Content address of one shard (cache granularity).
[[nodiscard]] std::string shard_key(const SweepPoint& point, std::uint64_t master_seed,
                                    std::uint64_t begin, std::uint64_t end,
                                    std::string_view engine_version = kEngineVersion);

/// Summary <-> flat JSONL record ("m.<stat>.<field>" keys); the round trip
/// is bit-exact, which the resume guarantees rely on.
[[nodiscard]] util::JsonObject summary_to_json(const sim::MonteCarloSummary& summary);
[[nodiscard]] sim::MonteCarloSummary summary_from_json(const util::JsonObject& record);

/// Append-only JSONL store of shard summaries keyed by shard_key.
class ResultCache {
 public:
  /// Empty dir = purely in-memory (no persistence).  Otherwise loads
  /// dir/cache.jsonl (creating the directory as needed) and appends to it.
  explicit ResultCache(const std::filesystem::path& dir);

  [[nodiscard]] std::optional<sim::MonteCarloSummary> lookup(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  void insert(const std::string& key, const SweepPoint& point, std::uint64_t seed,
              std::uint64_t begin, std::uint64_t end, const sim::MonteCarloSummary& summary);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::filesystem::path& file() const { return file_; }

 private:
  mutable std::mutex mutex_;
  std::filesystem::path file_;  ///< empty when in-memory only
  std::ofstream out_;
  std::map<std::string, util::JsonObject> records_;
};

/// Append-only JSONL journal of *completed points* (merged summaries).
/// A resumed campaign serves journaled points without touching the cache,
/// and re-merges partially-complete points from cached shards.
class Journal {
 public:
  /// Empty path = disabled (records kept in memory only).
  explicit Journal(const std::filesystem::path& path);

  [[nodiscard]] std::optional<sim::MonteCarloSummary> completed(const std::string& key) const;
  void mark_done(const std::string& key, const SweepPoint& point,
                 const sim::MonteCarloSummary& summary);
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::filesystem::path file_;
  std::ofstream out_;
  std::map<std::string, util::JsonObject> done_;
};

}  // namespace repcheck::campaign
