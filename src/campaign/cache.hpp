// Content-addressed result cache + campaign journal (checkpoint/resume),
// hardened against the failures a long campaign actually sees.
//
// Cache keys address one Monte-Carlo *shard* (a contiguous replicate range
// of one sweep point): FNV-128 over the canonical point parameters, the
// campaign master seed, the engine version string, and the shard's
// replicate range.  Identical inputs therefore reuse identical results —
// across reruns, resumed runs, and unrelated campaigns sharing points —
// while any semantic change to the simulator is isolated by bumping
// kEngineVersion.
//
// Failure model (docs/CAMPAIGN.md "Failure model & recovery semantics"):
//   * every record carries an FNV-128 checksum ("sum") over its canonical
//     serialization, so bit rot and torn writes are *detected*, not
//     silently merged;
//   * on load, damaged or checksum-mismatched lines are quarantined to a
//     sibling <stem>.quarantine<ext> file and counted (WARN-logged), never
//     silently skipped; records written before checksumming existed load
//     as "legacy" and are upgraded by fsck;
//   * append failures (disk full, I/O error) raise StoreWriteError with
//     the store, path and key instead of vanishing into a bad ofstream;
//   * fsck_store() verifies and compacts a store via write-to-temp +
//     atomic rename, re-checksumming every surviving record;
//   * failpoint sites (campaign.{cache,journal}.{open,torn_write,
//     corrupt_record,append_fail}) inject each of these failures
//     deterministically for tests.
//
// Both stores are append-only JSONL, flushed line-by-line, which is what
// bounds the cost of an interruption to the in-flight shard.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "campaign/sweep.hpp"
#include "core/montecarlo.hpp"
#include "util/jsonl.hpp"

namespace repcheck::campaign {

/// Stamped into every cache key and record.  Bump whenever simulator
/// semantics change so stale results stop matching.
inline constexpr std::string_view kEngineVersion = "repcheck-sim-v1";

/// Record field holding the FNV-128 checksum of the rest of the record.
inline constexpr std::string_view kChecksumField = "sum";

/// A store append that did not reach disk (disk full, I/O error, injected
/// fault).  The message names the store, file and key.
class StoreWriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a of the canonical parameter string.
[[nodiscard]] std::uint64_t point_hash(const SweepPoint& point);

/// Per-point master seed: SplitMix64 over (campaign seed ⊕ point hash),
/// so each sweep point owns an independent, order-free seed stream.
[[nodiscard]] std::uint64_t derive_point_seed(std::uint64_t master_seed, const SweepPoint& point);

/// Content address of a whole point (journal granularity).
[[nodiscard]] std::string point_key(const SweepPoint& point, std::uint64_t master_seed,
                                    std::string_view engine_version = kEngineVersion);

/// Content address of one shard (cache granularity).
[[nodiscard]] std::string shard_key(const SweepPoint& point, std::uint64_t master_seed,
                                    std::uint64_t begin, std::uint64_t end,
                                    std::string_view engine_version = kEngineVersion);

/// Summary <-> flat JSONL record ("m.<stat>.<field>" keys); the round trip
/// is bit-exact, which the resume guarantees rely on.
[[nodiscard]] util::JsonObject summary_to_json(const sim::MonteCarloSummary& summary);
[[nodiscard]] sim::MonteCarloSummary summary_from_json(const util::JsonObject& record);

/// FNV-128 hex checksum over the canonical serialization of `record` with
/// the "sum" field excluded (keys are sorted and doubles round-trip
/// shortest-form, so the payload is deterministic).
[[nodiscard]] std::string record_checksum(const util::JsonObject& record);

/// Where a store's damaged lines go: `<stem>.quarantine<ext>` next to the
/// store file (cache.jsonl -> cache.quarantine.jsonl).
[[nodiscard]] std::filesystem::path quarantine_path(const std::filesystem::path& store_file);

/// What a store load saw (exposed for operators and tests).
struct LoadStats {
  std::size_t loaded = 0;       ///< records accepted into the map
  std::size_t quarantined = 0;  ///< damaged/mismatched lines moved aside
  std::size_t legacy = 0;       ///< accepted records lacking a checksum
};

/// Verify-and-compact report for one store file.
struct FsckReport {
  std::filesystem::path file;
  std::size_t kept = 0;             ///< records surviving verification
  std::size_t quarantined = 0;      ///< damaged lines moved to quarantine
  std::size_t legacy_upgraded = 0;  ///< records that gained a checksum
  std::uintmax_t bytes_before = 0;
  std::uintmax_t bytes_after = 0;
};

/// Verifies every record of a JSONL store (quarantining damage exactly as
/// a normal load does), then atomically rewrites the file compacted —
/// duplicates collapsed, every record checksummed — via temp file +
/// rename.  `key_field` is "key" for caches, "done_key" for journals.
/// A missing file yields an all-zero report.
FsckReport fsck_store(const std::filesystem::path& file, std::string_view key_field);

/// Append-only JSONL store of shard summaries keyed by shard_key.
class ResultCache {
 public:
  /// Empty dir = purely in-memory (no persistence).  Otherwise loads
  /// dir/cache.jsonl (creating the directory as needed) and appends to it.
  explicit ResultCache(const std::filesystem::path& dir);

  [[nodiscard]] std::optional<sim::MonteCarloSummary> lookup(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;

  /// Appends one checksummed record; throws StoreWriteError when the line
  /// did not reach the stream intact.
  void insert(const std::string& key, const SweepPoint& point, std::uint64_t seed,
              std::uint64_t begin, std::uint64_t end, const sim::MonteCarloSummary& summary);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::filesystem::path& file() const { return file_; }
  [[nodiscard]] const LoadStats& load_stats() const { return load_stats_; }

 private:
  mutable std::mutex mutex_;
  std::filesystem::path file_;  ///< empty when in-memory only
  std::ofstream out_;
  bool dirty_ = false;  ///< last append failed; next one re-syncs with '\n'
  std::map<std::string, util::JsonObject> records_;
  LoadStats load_stats_;
};

/// Append-only JSONL journal of *completed points* (merged summaries).
/// A resumed campaign serves journaled points without touching the cache,
/// and re-merges partially-complete points from cached shards.
class Journal {
 public:
  /// Empty path = disabled (records kept in memory only).
  explicit Journal(const std::filesystem::path& path);

  [[nodiscard]] std::optional<sim::MonteCarloSummary> completed(const std::string& key) const;
  /// Throws StoreWriteError when the append did not reach the stream.
  void mark_done(const std::string& key, const SweepPoint& point,
                 const sim::MonteCarloSummary& summary);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const LoadStats& load_stats() const { return load_stats_; }

 private:
  mutable std::mutex mutex_;
  std::filesystem::path file_;
  std::ofstream out_;
  bool dirty_ = false;  ///< last append failed; next one re-syncs with '\n'
  std::map<std::string, util::JsonObject> done_;
  LoadStats load_stats_;
};

}  // namespace repcheck::campaign
