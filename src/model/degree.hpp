// Generalization of the restart analysis to replication degree r.
//
// The paper analyzes duplication (r = 2); its related work (Benoit et
// al. [4]) studies triplication.  Repeating the Section 4.3 derivation for
// groups of r replicas: a group dies when all r members die within the
// period, which happens with probability (λT)^r per group (first order);
// the r deaths are equally spaced in expectation, so the loss is
// r·T/(r+1).  Hence
//
//   H^rs_r(T)  = C^R/T + (r/(r+1)) · g · λ^r · T^r,
//   T_opt^rs_r = ( C^R (r+1) / (r² g λ^r) )^{1/(r+1)}  = Θ(μ^{r/(r+1)}),
//
// which reduces exactly to Eqs. (19)/(20) at r = 2.  Higher degrees trade
// throughput (N/r effective processors) for rarer interruptions and even
// longer checkpoint periods.
//
// No closed form is known for n_fail at r ≥ 3 (the r = 2 closed form is
// Theorem 4.1); we provide a Monte-Carlo estimator over the same
// failure-slot model instead, hence a Monte-Carlo MTTI.
#pragma once

#include <cstdint>

namespace repcheck::model {

/// First-order restart overhead at period T with `groups` groups of
/// `degree` replicas, per-processor MTBF `mtbf_proc`.
[[nodiscard]] double overhead_restart_degree(double restart_checkpoint_cost, double t,
                                             std::uint64_t groups, double mtbf_proc,
                                             std::uint32_t degree);

/// Restart-optimal period for degree-r replication (reduces to Eq. (20)
/// at degree 2).
[[nodiscard]] double t_opt_rs_degree(double restart_checkpoint_cost, std::uint64_t groups,
                                     double mtbf_proc, std::uint32_t degree);

/// Optimal first-order overhead at T_opt^rs_r.
[[nodiscard]] double h_opt_rs_degree(double restart_checkpoint_cost, std::uint64_t groups,
                                     double mtbf_proc, std::uint32_t degree);

/// Monte-Carlo estimate of the expected number of failures (counting
/// wasted hits on dead processors, as in Section 4.1) until some group of
/// `degree` replicas loses all members.
[[nodiscard]] double nfail_degree_monte_carlo(std::uint64_t groups, std::uint32_t degree,
                                              std::uint64_t samples, std::uint64_t seed);

/// Monte-Carlo MTTI for degree-r replication: n_fail · μ / (r·g).
[[nodiscard]] double mtti_degree_monte_carlo(std::uint64_t groups, std::uint32_t degree,
                                             double mtbf_proc, std::uint64_t samples,
                                             std::uint64_t seed);

}  // namespace repcheck::model
