#include "model/asymptotic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "math/roots.hpp"

namespace repcheck::model {

double asymptotic_ratio(double x) {
  if (!(x > 0.0)) throw std::domain_error("asymptotic_ratio requires x > 0");
  const double numerator = std::cbrt(9.0 / 8.0 * std::numbers::pi * x * x) + 1.0;
  const double denominator = std::sqrt(2.0 * x) + 1.0;
  return numerator / denominator;
}

double asymptotic_breakeven_x() {
  // R(0.01) < 1 and R(10) > 1 bracket the nontrivial root.
  return math::bisect_root([](double x) { return asymptotic_ratio(x) - 1.0; }, 0.01, 10.0, 1e-12);
}

double asymptotic_best_x() {
  const auto result =
      math::brent_minimize([](double x) { return asymptotic_ratio(x); }, 1e-6, 1.0, 1e-12);
  return result.x;
}

double asymptotic_max_gain() { return 1.0 - asymptotic_ratio(asymptotic_best_x()); }

}  // namespace repcheck::model
