// The paper's bottom line as an API (Section 7 summary):
//
//   "The main decision is still to decide whether the application should be
//    replicated or not.  However, whenever it should be (which is favored by
//    a large ratio of sequential tasks gamma, a large checkpointing cost C,
//    or a short MTBF), we are now able to determine the best strategy: use
//    full replication, restart dead processors at each checkpoint, and use
//    T_opt^rs for the checkpointing period."
//
// `decide` compares the predicted time-to-solution of running N plain
// processors with the Young/Daly period against N/2 replicated pairs with
// the restart strategy and T_opt^rs, and returns the winning configuration
// with its period and predictions.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "model/amdahl.hpp"

namespace repcheck::model {

struct PlatformSpec {
  std::uint64_t n_procs = 200'000;      ///< total processors available (even)
  double mtbf_proc = 0.0;               ///< individual-processor MTBF, seconds
  double checkpoint_cost = 60.0;        ///< C, seconds
  double restart_checkpoint_cost = 60.0;///< C^R in [C, 2C], seconds
  double recovery_cost = 60.0;          ///< R, seconds
  double downtime = 0.0;                ///< D, seconds
};

/// A platform/application input the model rejects (odd processor count,
/// non-positive MTBF, C^R outside [C, 2C], NaN, ...).  Derives from
/// std::domain_error so legacy catch sites keep working, and names the
/// offending field so protocol servers can surface a 4xx-style error
/// without string-matching the message.
class SpecError : public std::domain_error {
 public:
  SpecError(std::string field, const std::string& message)
      : std::domain_error(message), field_(std::move(field)) {}

  /// The input field that failed validation ("n_procs", "mtbf_proc",
  /// "checkpoint_cost", "restart_checkpoint_cost", "recovery_cost",
  /// "downtime", "gamma", "alpha", "w_seq").
  [[nodiscard]] const std::string& field() const noexcept { return field_; }

 private:
  std::string field_;
};

/// Validates a PlatformSpec: n_procs positive and even, mtbf_proc positive
/// and finite, C positive, C^R in [C, 2C], R and D non-negative, nothing
/// NaN.  Throws SpecError naming the first offending field.
void validate(const PlatformSpec& platform);

/// Validates the application + work inputs of decide(): gamma in [0, 1],
/// alpha >= 0, w_seq positive, all finite.  Throws SpecError.
void validate(const AmdahlApp& app, double w_seq);

enum class Plan { kNoReplication, kReplicatedRestart };

struct Advice {
  Plan plan = Plan::kNoReplication;
  /// Recommended checkpointing period for the winning plan, seconds.
  double period = 0.0;
  /// Predicted overheads and time-to-solutions for both candidate plans.
  double overhead_noreplication = 0.0;
  double overhead_replicated_restart = 0.0;
  double tts_noreplication = 0.0;
  double tts_replicated_restart = 0.0;
  /// Reference point: prior art (no-restart at T_MTTI^no) time-to-solution.
  double tts_replicated_norestart = 0.0;
  /// tts_winner / tts_runner_up (< 1 when the winner is strictly better).
  double advantage = 1.0;
};

/// Chooses between "no replication + Young/Daly" and "full replication +
/// restart + T_opt^rs" for an application of `w_seq` sequential work.
[[nodiscard]] Advice decide(const PlatformSpec& platform, const AmdahlApp& app, double w_seq);

}  // namespace repcheck::model
