// Time-unit constants shared by the analytic model, simulator, and benches.
//
// All model and simulator APIs take times in seconds.  The paper quotes
// MTBFs in years (e.g. "μ = 5 years ⇒ platform MTBF ≈ 5.2 minutes for 10⁶
// cores with μ = 10 years"); these constants make the conversions explicit.
#pragma once

namespace repcheck::model {

inline constexpr double kSecondsPerMinute = 60.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerDay = 86400.0;
// Julian year: reproduces the paper's "10 y / 10⁶ ≈ 5.2 min" example.
inline constexpr double kSecondsPerYear = 365.25 * kSecondsPerDay;
inline constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;

[[nodiscard]] constexpr double years(double y) { return y * kSecondsPerYear; }
[[nodiscard]] constexpr double days(double d) { return d * kSecondsPerDay; }
[[nodiscard]] constexpr double hours(double h) { return h * kSecondsPerHour; }
[[nodiscard]] constexpr double minutes(double m) { return m * kSecondsPerMinute; }

}  // namespace repcheck::model
