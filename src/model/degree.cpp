#include "model/degree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "prng/distributions.hpp"
#include "prng/xoshiro.hpp"

namespace repcheck::model {

namespace {
void require(std::uint64_t groups, double mtbf, std::uint32_t degree) {
  if (groups == 0) throw std::domain_error("need at least one replica group");
  if (!(mtbf > 0.0)) throw std::domain_error("MTBF must be positive");
  if (degree < 2) throw std::domain_error("replication degree must be at least 2");
}
}  // namespace

double overhead_restart_degree(double restart_checkpoint_cost, double t, std::uint64_t groups,
                               double mtbf_proc, std::uint32_t degree) {
  require(groups, mtbf_proc, degree);
  if (!(t > 0.0)) throw std::domain_error("period must be positive");
  if (!(restart_checkpoint_cost > 0.0)) {
    throw std::domain_error("checkpoint+restart cost must be positive");
  }
  const double r = static_cast<double>(degree);
  const double lambda_t = t / mtbf_proc;
  return restart_checkpoint_cost / t +
         r / (r + 1.0) * static_cast<double>(groups) * std::pow(lambda_t, r);
}

double t_opt_rs_degree(double restart_checkpoint_cost, std::uint64_t groups, double mtbf_proc,
                       std::uint32_t degree) {
  require(groups, mtbf_proc, degree);
  if (!(restart_checkpoint_cost > 0.0)) {
    throw std::domain_error("checkpoint+restart cost must be positive");
  }
  const double r = static_cast<double>(degree);
  const double lambda = 1.0 / mtbf_proc;
  const double numerator = restart_checkpoint_cost * (r + 1.0);
  const double denominator = r * r * static_cast<double>(groups) * std::pow(lambda, r);
  return std::pow(numerator / denominator, 1.0 / (r + 1.0));
}

double h_opt_rs_degree(double restart_checkpoint_cost, std::uint64_t groups, double mtbf_proc,
                       std::uint32_t degree) {
  const double t = t_opt_rs_degree(restart_checkpoint_cost, groups, mtbf_proc, degree);
  return overhead_restart_degree(restart_checkpoint_cost, t, groups, mtbf_proc, degree);
}

double nfail_degree_monte_carlo(std::uint64_t groups, std::uint32_t degree,
                                std::uint64_t samples, std::uint64_t seed) {
  if (groups == 0) throw std::domain_error("need at least one replica group");
  if (degree < 2) throw std::domain_error("replication degree must be at least 2");
  if (samples == 0) throw std::domain_error("need at least one sample");

  prng::Xoshiro256pp rng(seed);
  const std::uint64_t slots = groups * degree;
  const prng::UniformIndexSampler pick(slots);

  // Epoch-versioned death marks, reused across samples (same trick as
  // platform::FailureState, without constructing platforms).
  std::vector<std::uint32_t> dead_epoch(slots, 0);
  std::vector<std::uint32_t> group_dead(groups, 0);
  std::vector<std::uint32_t> group_epoch(groups, 0);
  std::uint32_t epoch = 0;

  double total = 0.0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    ++epoch;
    if (epoch == 0) {
      std::fill(dead_epoch.begin(), dead_epoch.end(), 0);
      std::fill(group_epoch.begin(), group_epoch.end(), 0);
      epoch = 1;
    }
    std::uint64_t hits = 0;
    for (;;) {
      ++hits;
      const std::uint64_t slot = pick(rng);
      if (dead_epoch[slot] == epoch) continue;  // wasted hit
      const std::uint64_t group = slot / degree;
      const std::uint32_t dead_here = group_epoch[group] == epoch ? group_dead[group] : 0;
      if (dead_here + 1 == degree) break;  // group wiped out
      dead_epoch[slot] = epoch;
      group_dead[group] = dead_here + 1;
      group_epoch[group] = epoch;
    }
    total += static_cast<double>(hits);
  }
  return total / static_cast<double>(samples);
}

double mtti_degree_monte_carlo(std::uint64_t groups, std::uint32_t degree, double mtbf_proc,
                               std::uint64_t samples, std::uint64_t seed) {
  require(groups, mtbf_proc, degree);
  const double nfail = nfail_degree_monte_carlo(groups, degree, samples, seed);
  // Failures strike the whole platform every μ/(r·g) seconds on average;
  // Wald's identity turns the expected hit count into the expected time.
  return nfail * mtbf_proc / (static_cast<double>(degree) * static_cast<double>(groups));
}

}  // namespace repcheck::model
