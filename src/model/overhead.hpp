// Time-overhead models H(T) = E(T)/T − 1.
//
// The figures plot three families:
//   H^no(T)  = C/T + T/(2 M_2b)                        (Eq. 12, literature)
//   H^rs(T)  = C^R/T + (2/3) b λ² T²                   (Eq. 19, this paper)
//   exact single-pair restart overhead from Eq. (14)   (validation)
// plus the classical no-replication overheads with and without the
// first-order approximation.
#pragma once

#include <cstdint>

namespace repcheck::model {

/// Eq. (12): first-order no-restart overhead at period T.
[[nodiscard]] double overhead_no_restart(double checkpoint_cost, double t, std::uint64_t pairs,
                                         double mtbf_proc);

/// Eq. (19): first-order restart overhead at period T with b pairs.
[[nodiscard]] double overhead_restart(double restart_checkpoint_cost, double t,
                                      std::uint64_t pairs, double mtbf_proc);

/// Eq. (7): first-order no-replication overhead C/T + N T / (2 μ).
[[nodiscard]] double overhead_noreplication(double checkpoint_cost, double t, double mtbf_proc,
                                            std::uint64_t n);

/// Exact single-pair restart overhead from Eq. (14) (no first-order
/// truncation; assumes failures spare checkpoint/recovery, as in the paper).
[[nodiscard]] double overhead_restart_single_pair_exact(double restart_checkpoint_cost,
                                                        double downtime, double recovery_cost,
                                                        double mtbf_proc, double t);

/// Exact expected period completion time for a single pair (Eq. 14).
[[nodiscard]] double expected_period_time_single_pair(double restart_checkpoint_cost,
                                                      double downtime, double recovery_cost,
                                                      double mtbf_proc, double t);

/// Expected time lost when both replicas of a pair die within T (exact form
/// derived in Section 4.2); tends to 2T/3 as λT → 0.
[[nodiscard]] double expected_time_lost_single_pair(double mtbf_proc, double t);

/// Exact no-replication overhead with failures striking anytime
/// (E(T) = e^{λR}(1/λ + D)(e^{λ(T+C)} − 1) for the domain rate λ).
[[nodiscard]] double overhead_noreplication_exact(double checkpoint_cost, double downtime,
                                                  double recovery_cost, double domain_mtbf,
                                                  double t);

/// First-order overhead of the restart-on-failure strategy (Section 7.3):
/// every failure triggers a C^R checkpoint wave, so the overhead is the
/// failure frequency times the wave cost, N·λ·C^R (rollbacks are
/// negligible — the chance of a partner death within one wave is tiny).
[[nodiscard]] double overhead_restart_on_failure(double restart_checkpoint_cost,
                                                 std::uint64_t n_procs, double mtbf_proc);

/// Converts a time overhead H (extra time per unit of useful work) to waste
/// (fraction of wall-clock time not spent on useful work), and back.
[[nodiscard]] double overhead_to_waste(double h);
[[nodiscard]] double waste_to_overhead(double w);

}  // namespace repcheck::model
