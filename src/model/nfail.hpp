// Expected number of failures to application interruption, n_fail(2b).
//
// With b replicated processor pairs, failures strike the 2b processor slots
// uniformly (a hit on an already-dead processor is wasted); the application
// is interrupted when both processors of some pair are dead.  The paper's
// Theorem 4.1 gives the closed form
//
//     n_fail(2b) = 1 + 4^b / C(2b, b)  ≈  sqrt(pi * b),
//
// superseding the birthday-problem estimate 1 + Q(b) ≈ sqrt(pi*b/2) of
// Ferreira et al. (40% too low).  We expose four independent evaluations —
// closed form, the recursive formulation of Casanova et al. [12], the
// integral of Eq. (9), and the asymptotic — which the test suite checks
// against each other.
#pragma once

#include <cstdint>
#include <vector>

namespace repcheck::model {

/// Theorem 4.1 closed form, evaluated in log space (exact up to b ~ 1e15).
[[nodiscard]] double nfail_closed_form(std::uint64_t pairs);

/// Recursive evaluation (O(b)): with k degraded pairs, the next failure is
/// fatal w.p. k/2b, wasted w.p. k/2b, and degrades a fresh pair otherwise.
[[nodiscard]] double nfail_recursive(std::uint64_t pairs);

/// Eq. (9): n_fail(2b) = 2b·4^b ∫_0^{1/2} x^{b-1}(1-x)^b dx, via the
/// incomplete Beta function.
[[nodiscard]] double nfail_integral(std::uint64_t pairs);

/// Stirling asymptotic sqrt(pi * b).
[[nodiscard]] double nfail_asymptotic(std::uint64_t pairs);

/// The superseded birthday-problem estimate 1 + Q(b) used in prior work.
[[nodiscard]] double nfail_birthday_estimate(std::uint64_t pairs);

/// N(k) for k = 0..b: expected further failures until interruption given
/// that k pairs are already degraded (one replica dead).  N(0) is
/// n_fail(2b); N(b) = 2 (every pair degraded: the next non-wasted hit is
/// fatal).  Drives the state-adaptive no-restart period extension.
[[nodiscard]] std::vector<double> nfail_from_degraded(std::uint64_t pairs);

}  // namespace repcheck::model
