// Break-even solvers: where replication starts to pay.
//
// Figures 9 and 10 locate the crossovers empirically ("replication becomes
// more efficient ... for an MTBF shorter than 1.8e8 s", "for N >= 2e5
// processors").  These functions compute the same crossovers analytically
// by solving tts_replicated_restart = tts_noreplication for one parameter
// with the others fixed, using the first-order overhead models.  Each
// returns the threshold value, or a quiet NaN when no crossover exists in
// the searched range (one side dominates everywhere).
#pragma once

#include <cstdint>

#include "model/amdahl.hpp"
#include "model/decision.hpp"

namespace repcheck::model {

/// Individual-processor MTBF below which full replication + restart beats
/// no replication (searches mtbf in [lo, hi] seconds).
[[nodiscard]] double breakeven_mtbf(const PlatformSpec& platform, const AmdahlApp& app,
                                    double lo = 1e4, double hi = 1e12);

/// Platform size above which replication wins, at fixed MTBF (searches n
/// in [lo, hi]; result rounded to an even processor count).
[[nodiscard]] double breakeven_n(const PlatformSpec& platform, const AmdahlApp& app,
                                 std::uint64_t lo = 1000, std::uint64_t hi = 100000000);

/// Sequential fraction gamma above which replication wins (searches
/// [1e-9, 0.5]); large gamma makes halving the processors cheap.
[[nodiscard]] double breakeven_gamma(const PlatformSpec& platform, const AmdahlApp& app);

/// Checkpoint cost above which replication wins (C^R tracks C at the same
/// ratio as in `platform`; searches [lo, hi] seconds).
[[nodiscard]] double breakeven_checkpoint_cost(const PlatformSpec& platform,
                                               const AmdahlApp& app, double lo = 1.0,
                                               double hi = 1e5);

}  // namespace repcheck::model
