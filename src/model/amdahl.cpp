#include "model/amdahl.hpp"

#include <stdexcept>

namespace repcheck::model {

namespace {
void require_params(double w, double gamma) {
  if (!(w >= 0.0)) throw std::domain_error("work must be non-negative");
  if (!(gamma >= 0.0) || !(gamma <= 1.0)) throw std::domain_error("gamma must be in [0, 1]");
}

double amdahl_factor(std::uint64_t effective_procs, double gamma) {
  if (effective_procs == 0) throw std::domain_error("need at least one effective processor");
  return gamma + (1.0 - gamma) / static_cast<double>(effective_procs);
}
}  // namespace

double parallel_time(double w_seq, std::uint64_t n, double gamma) {
  require_params(w_seq, gamma);
  return amdahl_factor(n, gamma) * w_seq;
}

double replicated_parallel_time(double w_seq, std::uint64_t n, double gamma, double alpha) {
  require_params(w_seq, gamma);
  if (n % 2 != 0) throw std::domain_error("full replication requires an even processor count");
  if (!(alpha >= 0.0)) throw std::domain_error("alpha must be non-negative");
  return (1.0 + alpha) * amdahl_factor(n / 2, gamma) * w_seq;
}

double partial_replicated_parallel_time(double w_seq, std::uint64_t pairs,
                                        std::uint64_t standalone, double gamma, double alpha) {
  require_params(w_seq, gamma);
  if (!(alpha >= 0.0)) throw std::domain_error("alpha must be non-negative");
  const double slowdown = pairs > 0 ? 1.0 + alpha : 1.0;
  return slowdown * amdahl_factor(pairs + standalone, gamma) * w_seq;
}

double time_to_solution_noreplication(double w_seq, std::uint64_t n, double gamma,
                                      double overhead) {
  if (!(overhead >= 0.0)) throw std::domain_error("overhead must be non-negative");
  return parallel_time(w_seq, n, gamma) * (overhead + 1.0);
}

double time_to_solution_replicated(double w_seq, std::uint64_t n, double gamma, double alpha,
                                   double overhead) {
  if (!(overhead >= 0.0)) throw std::domain_error("overhead must be non-negative");
  return replicated_parallel_time(w_seq, n, gamma, alpha) * (overhead + 1.0);
}

double time_to_solution_partial(double w_seq, std::uint64_t pairs, std::uint64_t standalone,
                                double gamma, double alpha, double overhead) {
  if (!(overhead >= 0.0)) throw std::domain_error("overhead must be non-negative");
  return partial_replicated_parallel_time(w_seq, pairs, standalone, gamma, alpha) *
         (overhead + 1.0);
}

double work_per_period_noreplication(double period, std::uint64_t n, double gamma) {
  if (!(period > 0.0)) throw std::domain_error("period must be positive");
  return period / amdahl_factor(n, gamma);
}

double work_per_period_replicated(double period, std::uint64_t n, double gamma, double alpha) {
  if (!(period > 0.0)) throw std::domain_error("period must be positive");
  if (n % 2 != 0) throw std::domain_error("full replication requires an even processor count");
  if (!(alpha >= 0.0)) throw std::domain_error("alpha must be non-negative");
  return period / ((1.0 + alpha) * amdahl_factor(n / 2, gamma));
}

}  // namespace repcheck::model
