// Amdahl's-law application model and time-to-solution (Section 5).
//
// An application with sequential fraction gamma runs W units of work on n
// effective processors in (gamma + (1-gamma)/n)·W seconds; active
// replication additionally slows execution by (1+alpha) (message
// duplication).  The time-to-solution formulas are Eqs. (22)/(23).
#pragma once

#include <cstdint>

namespace repcheck::model {

/// Application description; paper defaults are gamma = 1e-5, alpha in {0, 0.2}.
struct AmdahlApp {
  double gamma = 1e-5;  ///< inherently sequential fraction
  double alpha = 0.2;   ///< active-replication communication slowdown
};

/// Failure-free time to run `w_seq` sequential-equivalent work on n
/// non-replicated processors.
[[nodiscard]] double parallel_time(double w_seq, std::uint64_t n, double gamma);

/// Same with full replication on n = 2b processors (b effective) plus the
/// (1+alpha) replication slowdown.
[[nodiscard]] double replicated_parallel_time(double w_seq, std::uint64_t n, double gamma,
                                              double alpha);

/// Partial replication: `pairs` replicated pairs + `standalone` plain
/// processors give pairs + standalone effective processors, still paying
/// the (1+alpha) slowdown when pairs > 0.
[[nodiscard]] double partial_replicated_parallel_time(double w_seq, std::uint64_t pairs,
                                                      std::uint64_t standalone, double gamma,
                                                      double alpha);

/// Eq. (22): time-to-solution without replication at overhead H.
[[nodiscard]] double time_to_solution_noreplication(double w_seq, std::uint64_t n, double gamma,
                                                    double overhead);

/// Eq. (23): time-to-solution with full replication (N = 2b processors).
[[nodiscard]] double time_to_solution_replicated(double w_seq, std::uint64_t n, double gamma,
                                                 double alpha, double overhead);

/// Partial-replication time-to-solution at overhead H.
[[nodiscard]] double time_to_solution_partial(double w_seq, std::uint64_t pairs,
                                              std::uint64_t standalone, double gamma, double alpha,
                                              double overhead);

/// Section 5's W_opt: work units between checkpoints for a given period.
[[nodiscard]] double work_per_period_noreplication(double period, std::uint64_t n, double gamma);
[[nodiscard]] double work_per_period_replicated(double period, std::uint64_t n, double gamma,
                                                double alpha);

}  // namespace repcheck::model
