// Checkpointing periods: Young/Daly and the paper's restart-optimal period.
//
// The two protagonists of the paper:
//   T_MTTI^no  = sqrt(2 · M_2b · C)            (Eq. 11, prior work, Θ(μ^1/2))
//   T_opt^rs   = (3 C^R / (4 b λ²))^{1/3}      (Eq. 20, this paper, Θ(μ^2/3))
// plus the classical no-replication formulas (Eqs. 4/6), the literature's
// higher-order variants, and numeric exact optimizers used as cross-checks.
#pragma once

#include <cstdint>

namespace repcheck::model {

/// Young's formula sqrt(2 μ C) for one failure domain of MTBF μ (Eq. 4).
[[nodiscard]] double young_daly_period(double checkpoint_cost, double domain_mtbf);

/// Eq. (6): N non-replicated processors of individual MTBF mtbf_proc.
[[nodiscard]] double young_daly_period_parallel(double checkpoint_cost, double mtbf_proc,
                                                std::uint64_t n);

/// Daly's variant sqrt(2 (μ + R) C) [14].
[[nodiscard]] double daly_period(double checkpoint_cost, double recovery_cost, double domain_mtbf);

/// The *exact* optimizer of the no-replication overhead with failures
/// striking anytime and D = R = 0, via the Lambert function the paper
/// alludes to ("the solution is complicated as it involves the Lambert
/// function"): T = (1 + W₀(−e^{−1−λC}))/λ.  Collapses to Young/Daly as
/// λC → 0.
[[nodiscard]] double daly_exact_period(double checkpoint_cost, double domain_mtbf);

/// The variant sqrt(2 (μ − D − R) C) − C from the fault-tolerance survey [24].
[[nodiscard]] double survey_period(double checkpoint_cost, double downtime, double recovery_cost,
                                   double domain_mtbf);

/// Eq. (11): the no-restart period sqrt(2 M_2b C) used by all prior work.
[[nodiscard]] double t_mtti_no(double checkpoint_cost, std::uint64_t pairs, double mtbf_proc);

/// Eq. (20): the restart-optimal period (3 C^R / (4 b λ²))^{1/3}.
[[nodiscard]] double t_opt_rs(double restart_checkpoint_cost, std::uint64_t pairs,
                              double mtbf_proc);

/// First-order optimal overheads at those periods:
/// Eq. (6): sqrt(2 C N λ) without replication.
[[nodiscard]] double h_opt_noreplication(double checkpoint_cost, double mtbf_proc, std::uint64_t n);
/// Eq. (21): (3 C^R sqrt(b) λ / sqrt(2))^{2/3} with replication + restart.
[[nodiscard]] double h_opt_rs(double restart_checkpoint_cost, std::uint64_t pairs,
                              double mtbf_proc);

/// Numeric exact optimizer of the single-pair restart overhead (Eq. 14),
/// for validating that T_opt^rs's first-order formula is accurate.
[[nodiscard]] double exact_single_pair_restart_period(double restart_checkpoint_cost,
                                                      double downtime, double recovery_cost,
                                                      double mtbf_proc);

/// Numeric exact optimizer of the classical no-replication overhead with
/// failures striking anytime (E(T) = e^{λR}(1/λ + D)(e^{λ(T+C)} − 1)).
[[nodiscard]] double exact_noreplication_period(double checkpoint_cost, double downtime,
                                                double recovery_cost, double domain_mtbf);

}  // namespace repcheck::model
