// Energy model (extended-report feature).
//
// The companion research report shows that the restart strategy's gains
// carry over to energy overheads.  We model per-processor power in three
// states — static (always drawn while powered), compute (added while
// executing application work), and I/O (added while checkpointing or
// recovering) — and integrate over a run's time breakdown.
#pragma once

#include <cstdint>

namespace repcheck::model {

struct PowerModel {
  double static_watts = 100.0;   ///< drawn whenever the node is powered
  double compute_watts = 120.0;  ///< additional draw while computing
  double io_watts = 30.0;        ///< additional draw during checkpoint/recovery
};

/// How a run's wall-clock decomposes per processor (seconds).  `compute`
/// includes re-executed (wasted) work — it draws compute power either way.
struct TimeBreakdown {
  double compute = 0.0;
  double io = 0.0;    ///< checkpoints + recoveries
  double idle = 0.0;  ///< downtime and waiting
  [[nodiscard]] double total() const { return compute + io + idle; }
};

/// Total Joules for `n_procs` processors with the given breakdown.
[[nodiscard]] double energy_joules(const PowerModel& power, const TimeBreakdown& breakdown,
                                   std::uint64_t n_procs);

/// Energy overhead relative to an ideal run: `useful_compute` seconds of
/// pure computation on the same processors with no I/O, idle or re-execution.
[[nodiscard]] double energy_overhead(const PowerModel& power, const TimeBreakdown& breakdown,
                                     std::uint64_t n_procs, double useful_compute);

/// Energy-optimal restart period.  Checkpointing draws less power than
/// computing (I/O draw < compute draw), so a checkpoint-second costs only
/// ρ = (P_static + P_io)/(P_static + P_compute) of a compute-second; the
/// first-order energy overhead is ρ·C^R/T + (2/3)·b·λ²·T² and its optimum
/// is the time-optimal period scaled by ρ^{1/3} — checkpoint *more* often
/// when minimizing Joules.
[[nodiscard]] double energy_optimal_period_rs(const PowerModel& power,
                                              double restart_checkpoint_cost,
                                              std::uint64_t pairs, double mtbf_proc);

/// First-order energy overhead of the restart strategy at period T (extra
/// Joules per Joule of useful computation).
[[nodiscard]] double energy_overhead_rs(const PowerModel& power, double restart_checkpoint_cost,
                                        double t, std::uint64_t pairs, double mtbf_proc);

/// The I/O-vs-compute power ratio ρ used above.
[[nodiscard]] double io_power_ratio(const PowerModel& power);

}  // namespace repcheck::model
