#include "model/breakeven.hpp"

#include <cmath>
#include <functional>
#include <limits>

#include "math/roots.hpp"

namespace repcheck::model {

namespace {

/// tts_noreplication − tts_replicated_restart: positive when replication
/// wins.  w_seq cancels in the sign, so any positive value works.
double replication_margin(const PlatformSpec& platform, const AmdahlApp& app) {
  const auto advice = decide(platform, app, /*w_seq=*/1.0);
  return advice.tts_noreplication - advice.tts_replicated_restart;
}

/// Bisects `margin` over [lo, hi] after checking for a sign change; NaN if
/// one side dominates the whole range.
double solve(const std::function<double(double)>& margin, double lo, double hi) {
  const double at_lo = margin(lo);
  const double at_hi = margin(hi);
  if (at_lo == 0.0) return lo;
  if (at_hi == 0.0) return hi;
  if (at_lo * at_hi > 0.0) return std::numeric_limits<double>::quiet_NaN();
  return math::bisect_root(margin, lo, hi, 1e-6 * (hi - lo));
}

}  // namespace

double breakeven_mtbf(const PlatformSpec& platform, const AmdahlApp& app, double lo, double hi) {
  return solve(
      [&](double mtbf) {
        PlatformSpec p = platform;
        p.mtbf_proc = mtbf;
        return replication_margin(p, app);
      },
      lo, hi);
}

double breakeven_n(const PlatformSpec& platform, const AmdahlApp& app, std::uint64_t lo,
                   std::uint64_t hi) {
  const double threshold = solve(
      [&](double n) {
        PlatformSpec p = platform;
        p.n_procs = 2 * static_cast<std::uint64_t>(n / 2.0);  // even
        return replication_margin(p, app);
      },
      static_cast<double>(lo), static_cast<double>(hi));
  if (std::isnan(threshold)) return threshold;
  return 2.0 * std::round(threshold / 2.0);
}

double breakeven_gamma(const PlatformSpec& platform, const AmdahlApp& app) {
  return solve(
      [&](double gamma) {
        AmdahlApp a = app;
        a.gamma = gamma;
        return replication_margin(platform, a);
      },
      1e-9, 0.5);
}

double breakeven_checkpoint_cost(const PlatformSpec& platform, const AmdahlApp& app, double lo,
                                 double hi) {
  const double cr_ratio = platform.restart_checkpoint_cost / platform.checkpoint_cost;
  return solve(
      [&](double c) {
        PlatformSpec p = platform;
        p.checkpoint_cost = c;
        p.restart_checkpoint_cost = cr_ratio * c;
        p.recovery_cost = c;
        return replication_margin(p, app);
      },
      lo, hi);
}

}  // namespace repcheck::model
