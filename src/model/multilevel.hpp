// Two-level (buddy + PFS) checkpointing under the restart strategy.
//
// Section 2: production checkpoint stacks (FTI, VeloC) write a cheap
// first-level copy — for replicated processes, *the replica's memory is the
// buddy copy* — and periodically flush to the reliable parallel file
// system, "to manage the risk of losing the checkpoint in case of failure
// of two buddy processes."  With replication that risk is precisely an
// application crash: when both replicas of a pair die, their in-memory
// checkpoint dies with them, so every crash recovers from the last PFS
// flush, losing up to k−1 periods.
//
// First-order analysis (extending Eq. 19): flushing every k-th checkpoint,
//
//   H(T, k) = (C_b + C_p/k)/T
//           + b λ² T · ( 2T/3 + (k−1)(T + C_b)/2 + R_p + D )
//
// where the first term is the failure-free cost and the second multiplies
// the per-period crash probability b(λT)² by the expected loss: two thirds
// of the failing period, half the flush interval's completed periods, and
// the PFS recovery.  For fixed T the optimal flush cadence is
//
//   k* = sqrt( 2 C_p / (b λ² T² (T + C_b)) ),
//
// and T itself is re-optimized numerically under C_eff = C_b + C_p/k.
#pragma once

#include <cstdint>

namespace repcheck::model {

struct TwoLevelCosts {
  double buddy_checkpoint = 60.0;  ///< C_b: in-memory/buddy level
  double pfs_flush = 600.0;        ///< C_p: additional cost of a flush checkpoint
  double pfs_recovery = 600.0;     ///< R_p: recovery from the PFS level
  double downtime = 0.0;           ///< D
};

/// First-order overhead of the restart strategy with period T and a PFS
/// flush every k-th checkpoint.
[[nodiscard]] double two_level_overhead(const TwoLevelCosts& costs, double t, double k,
                                        std::uint64_t pairs, double mtbf_proc);

/// Optimal (continuous) flush cadence for a fixed period T; at least 1.
[[nodiscard]] double two_level_flush_interval(const TwoLevelCosts& costs, double t,
                                              std::uint64_t pairs, double mtbf_proc);

struct TwoLevelPlan {
  double period = 0.0;          ///< T
  double flush_every = 1.0;     ///< k (continuous optimum; round for use)
  double predicted_overhead = 0.0;
};

/// Jointly optimizes (T, k) by alternating the closed-form k*(T) with a
/// 1-D numeric minimization over T.
[[nodiscard]] TwoLevelPlan optimize_two_level(const TwoLevelCosts& costs, std::uint64_t pairs,
                                              double mtbf_proc);

}  // namespace repcheck::model
