#include "model/mtti.hpp"

#include <cmath>
#include <stdexcept>

#include "math/integrate.hpp"
#include "model/nfail.hpp"

namespace repcheck::model {

namespace {
void require_positive_mtbf(double mtbf) {
  if (!(mtbf > 0.0)) throw std::domain_error("MTBF must be positive");
}
void require_probability(double p) {
  if (!(p > 0.0) || !(p < 1.0)) throw std::domain_error("probability must be in (0, 1)");
}
}  // namespace

double mtti(std::uint64_t pairs, double mtbf_proc) {
  require_positive_mtbf(mtbf_proc);
  return nfail_closed_form(pairs) * mtbf_proc / (2.0 * static_cast<double>(pairs));
}

double mtti_integral(std::uint64_t pairs, double mtbf_proc) {
  require_positive_mtbf(mtbf_proc);
  // Interruption times concentrate around the MTTI scale; integrate outwards
  // from a window of that size.
  const double scale = mtti(pairs, mtbf_proc);
  return math::integrate_to_infinity(
      [pairs, mtbf_proc](double t) { return survival_pairs(t, mtbf_proc, pairs); }, 0.0,
      scale, 1e-9 * scale);
}

double mtti_degraded(std::uint64_t pairs, std::uint64_t degraded, double mtbf_proc) {
  require_positive_mtbf(mtbf_proc);
  if (degraded > pairs) throw std::domain_error("degraded pair count exceeds pair count");
  const auto table = nfail_from_degraded(pairs);
  return table[degraded] * mtbf_proc / (2.0 * static_cast<double>(pairs));
}

double survival_single(double t, double mtbf_proc) {
  require_positive_mtbf(mtbf_proc);
  return std::exp(-t / mtbf_proc);
}

double survival_parallel(double t, double mtbf_proc, std::uint64_t n) {
  require_positive_mtbf(mtbf_proc);
  return std::exp(-static_cast<double>(n) * t / mtbf_proc);
}

double survival_pairs(double t, double mtbf_proc, std::uint64_t pairs) {
  require_positive_mtbf(mtbf_proc);
  if (pairs == 0) throw std::domain_error("survival_pairs requires pairs >= 1");
  const double q = -std::expm1(-t / mtbf_proc);  // P(one processor dead by t)
  // log-space for large b: (1 - q^2)^b
  return std::exp(static_cast<double>(pairs) * std::log1p(-q * q));
}

double cdf_single(double t, double mtbf_proc) { return 1.0 - survival_single(t, mtbf_proc); }

double cdf_parallel(double t, double mtbf_proc, std::uint64_t n) {
  return 1.0 - survival_parallel(t, mtbf_proc, n);
}

double cdf_pairs(double t, double mtbf_proc, std::uint64_t pairs) {
  return 1.0 - survival_pairs(t, mtbf_proc, pairs);
}

double time_to_failure_probability_single(double p, double mtbf_proc) {
  require_positive_mtbf(mtbf_proc);
  require_probability(p);
  return -mtbf_proc * std::log1p(-p);
}

double time_to_failure_probability_parallel(double p, double mtbf_proc, std::uint64_t n) {
  if (n == 0) throw std::domain_error("need at least one processor");
  return time_to_failure_probability_single(p, mtbf_proc) / static_cast<double>(n);
}

double time_to_failure_probability_pairs(double p, double mtbf_proc, std::uint64_t pairs) {
  require_positive_mtbf(mtbf_proc);
  require_probability(p);
  if (pairs == 0) throw std::domain_error("need at least one pair");
  // Invert (1 - q^2)^b = 1 - p:  q = sqrt(1 - (1-p)^{1/b}),  t = -mu ln(1 - q).
  const double inner = std::exp(std::log1p(-p) / static_cast<double>(pairs));
  const double q = std::sqrt(1.0 - inner);
  return -mtbf_proc * std::log1p(-q);
}

}  // namespace repcheck::model
