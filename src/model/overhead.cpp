#include "model/overhead.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "model/mtti.hpp"

namespace repcheck::model {

namespace {
void require_positive(double v, const char* what) {
  if (!(v > 0.0)) throw std::domain_error(std::string(what) + " must be positive");
}
}  // namespace

double overhead_no_restart(double checkpoint_cost, double t, std::uint64_t pairs,
                           double mtbf_proc) {
  require_positive(t, "period");
  require_positive(checkpoint_cost, "checkpoint cost");
  return checkpoint_cost / t + t / (2.0 * mtti(pairs, mtbf_proc));
}

double overhead_restart(double restart_checkpoint_cost, double t, std::uint64_t pairs,
                        double mtbf_proc) {
  require_positive(t, "period");
  require_positive(restart_checkpoint_cost, "checkpoint+restart cost");
  require_positive(mtbf_proc, "MTBF");
  if (pairs == 0) throw std::domain_error("need at least one pair");
  const double lambda = 1.0 / mtbf_proc;
  return restart_checkpoint_cost / t +
         2.0 / 3.0 * static_cast<double>(pairs) * lambda * lambda * t * t;
}

double overhead_noreplication(double checkpoint_cost, double t, double mtbf_proc,
                              std::uint64_t n) {
  require_positive(t, "period");
  require_positive(checkpoint_cost, "checkpoint cost");
  require_positive(mtbf_proc, "MTBF");
  if (n == 0) throw std::domain_error("need at least one processor");
  return checkpoint_cost / t + static_cast<double>(n) * t / (2.0 * mtbf_proc);
}

double expected_time_lost_single_pair(double mtbf_proc, double t) {
  require_positive(mtbf_proc, "MTBF");
  require_positive(t, "period");
  const double lambda = 1.0 / mtbf_proc;
  const double y = lambda * t;
  if (y < 1e-5) {
    // Taylor form 2T/3·(1 + O(y)) avoids 0/0 for tiny rates.
    return 2.0 * t / 3.0;
  }
  const double e1 = std::exp(-y);
  const double e2 = std::exp(-2.0 * y);
  const double u = (2.0 * e2 - 4.0 * e1) * y + e2 - 4.0 * e1 + 3.0;
  const double v = (1.0 - e1) * (1.0 - e1);
  return u / (2.0 * lambda * v);
}

double expected_period_time_single_pair(double restart_checkpoint_cost, double downtime,
                                        double recovery_cost, double mtbf_proc, double t) {
  require_positive(t, "period");
  const double lambda = 1.0 / mtbf_proc;
  const double y = lambda * t;
  // p1 / (1 - p1) with p1 = (1 - e^{-y})^2, in the numerically stable form
  // (e^y - 1)^2 / (2 e^y - 1).
  const double em1 = std::expm1(y);
  const double ratio = em1 * em1 / (2.0 * std::exp(y) - 1.0);
  const double t_lost = expected_time_lost_single_pair(mtbf_proc, t);
  return t + restart_checkpoint_cost + (downtime + recovery_cost + t_lost) * ratio;
}

double overhead_restart_single_pair_exact(double restart_checkpoint_cost, double downtime,
                                          double recovery_cost, double mtbf_proc, double t) {
  return expected_period_time_single_pair(restart_checkpoint_cost, downtime, recovery_cost,
                                          mtbf_proc, t) /
             t -
         1.0;
}

double overhead_noreplication_exact(double checkpoint_cost, double downtime, double recovery_cost,
                                    double domain_mtbf, double t) {
  require_positive(t, "period");
  require_positive(domain_mtbf, "MTBF");
  const double lambda = 1.0 / domain_mtbf;
  const double expected = std::exp(lambda * recovery_cost) * (domain_mtbf + downtime) *
                          std::expm1(lambda * (t + checkpoint_cost));
  return expected / t - 1.0;
}

double overhead_restart_on_failure(double restart_checkpoint_cost, std::uint64_t n_procs,
                                   double mtbf_proc) {
  require_positive(restart_checkpoint_cost, "checkpoint+restart cost");
  require_positive(mtbf_proc, "MTBF");
  if (n_procs == 0) throw std::domain_error("need at least one processor");
  return static_cast<double>(n_procs) * restart_checkpoint_cost / mtbf_proc;
}

double overhead_to_waste(double h) {
  if (h < 0.0) throw std::domain_error("overhead must be non-negative");
  return h / (1.0 + h);
}

double waste_to_overhead(double w) {
  if (!(w >= 0.0) || !(w < 1.0)) throw std::domain_error("waste must be in [0, 1)");
  return w / (1.0 - w);
}

}  // namespace repcheck::model
