#include "model/periods.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "math/lambert_w.hpp"
#include "math/roots.hpp"
#include "model/mtti.hpp"
#include "model/overhead.hpp"

namespace repcheck::model {

namespace {
void require_positive(double v, const char* what) {
  if (!(v > 0.0)) throw std::domain_error(std::string(what) + " must be positive");
}
}  // namespace

double young_daly_period(double checkpoint_cost, double domain_mtbf) {
  require_positive(checkpoint_cost, "checkpoint cost");
  require_positive(domain_mtbf, "MTBF");
  return std::sqrt(2.0 * domain_mtbf * checkpoint_cost);
}

double young_daly_period_parallel(double checkpoint_cost, double mtbf_proc, std::uint64_t n) {
  if (n == 0) throw std::domain_error("need at least one processor");
  return young_daly_period(checkpoint_cost, mtbf_proc / static_cast<double>(n));
}

double daly_period(double checkpoint_cost, double recovery_cost, double domain_mtbf) {
  require_positive(checkpoint_cost, "checkpoint cost");
  require_positive(domain_mtbf, "MTBF");
  return std::sqrt(2.0 * (domain_mtbf + recovery_cost) * checkpoint_cost);
}

double daly_exact_period(double checkpoint_cost, double domain_mtbf) {
  require_positive(checkpoint_cost, "checkpoint cost");
  require_positive(domain_mtbf, "MTBF");
  const double lambda = 1.0 / domain_mtbf;
  // dH/dT = 0 for H(T) = μ(e^{λ(T+C)} − 1)/T − 1 reduces to
  // (λT − 1)·e^{λT − 1} = −e^{−1 − λC}; the principal branch gives the
  // root with 0 < T < μ.
  const double w = math::lambert_w0(-std::exp(-1.0 - lambda * checkpoint_cost));
  return (1.0 + w) / lambda;
}

double survey_period(double checkpoint_cost, double downtime, double recovery_cost,
                     double domain_mtbf) {
  require_positive(checkpoint_cost, "checkpoint cost");
  const double effective = domain_mtbf - downtime - recovery_cost;
  require_positive(effective, "MTBF minus D minus R");
  return std::sqrt(2.0 * effective * checkpoint_cost) - checkpoint_cost;
}

double t_mtti_no(double checkpoint_cost, std::uint64_t pairs, double mtbf_proc) {
  require_positive(checkpoint_cost, "checkpoint cost");
  return std::sqrt(2.0 * mtti(pairs, mtbf_proc) * checkpoint_cost);
}

double t_opt_rs(double restart_checkpoint_cost, std::uint64_t pairs, double mtbf_proc) {
  require_positive(restart_checkpoint_cost, "checkpoint+restart cost");
  require_positive(mtbf_proc, "MTBF");
  if (pairs == 0) throw std::domain_error("need at least one pair");
  const double lambda = 1.0 / mtbf_proc;
  return std::cbrt(3.0 * restart_checkpoint_cost /
                   (4.0 * static_cast<double>(pairs) * lambda * lambda));
}

double h_opt_noreplication(double checkpoint_cost, double mtbf_proc, std::uint64_t n) {
  require_positive(checkpoint_cost, "checkpoint cost");
  require_positive(mtbf_proc, "MTBF");
  if (n == 0) throw std::domain_error("need at least one processor");
  return std::sqrt(2.0 * checkpoint_cost * static_cast<double>(n) / mtbf_proc);
}

double h_opt_rs(double restart_checkpoint_cost, std::uint64_t pairs, double mtbf_proc) {
  require_positive(restart_checkpoint_cost, "checkpoint+restart cost");
  require_positive(mtbf_proc, "MTBF");
  if (pairs == 0) throw std::domain_error("need at least one pair");
  const double lambda = 1.0 / mtbf_proc;
  const double base = 3.0 * restart_checkpoint_cost * std::sqrt(static_cast<double>(pairs)) *
                      lambda / std::sqrt(2.0);
  return std::pow(base, 2.0 / 3.0);
}

double exact_single_pair_restart_period(double restart_checkpoint_cost, double downtime,
                                        double recovery_cost, double mtbf_proc) {
  require_positive(mtbf_proc, "MTBF");
  const double seed = t_opt_rs(restart_checkpoint_cost, 1, mtbf_proc);
  const auto result = math::minimize_unbounded(
      [&](double t) {
        return overhead_restart_single_pair_exact(restart_checkpoint_cost, downtime,
                                                  recovery_cost, mtbf_proc, t);
      },
      seed, 1e-6 * seed);
  return result.x;
}

double exact_noreplication_period(double checkpoint_cost, double downtime, double recovery_cost,
                                  double domain_mtbf) {
  require_positive(domain_mtbf, "MTBF");
  const double seed = young_daly_period(checkpoint_cost, domain_mtbf);
  const auto result = math::minimize_unbounded(
      [&](double t) {
        return overhead_noreplication_exact(checkpoint_cost, downtime, recovery_cost,
                                            domain_mtbf, t);
      },
      seed, 1e-6 * seed);
  return result.x;
}

}  // namespace repcheck::model
