#include "model/energy.hpp"

#include <cmath>
#include <stdexcept>

#include "model/periods.hpp"

namespace repcheck::model {

double energy_joules(const PowerModel& power, const TimeBreakdown& breakdown,
                     std::uint64_t n_procs) {
  if (n_procs == 0) throw std::domain_error("need at least one processor");
  if (!(breakdown.compute >= 0.0) || !(breakdown.io >= 0.0) || !(breakdown.idle >= 0.0)) {
    throw std::domain_error("time breakdown components must be non-negative");
  }
  const double per_proc = power.static_watts * breakdown.total() +
                          power.compute_watts * breakdown.compute +
                          power.io_watts * breakdown.io;
  return per_proc * static_cast<double>(n_procs);
}

double energy_overhead(const PowerModel& power, const TimeBreakdown& breakdown,
                       std::uint64_t n_procs, double useful_compute) {
  if (!(useful_compute > 0.0)) throw std::domain_error("useful compute time must be positive");
  const double actual = energy_joules(power, breakdown, n_procs);
  const TimeBreakdown ideal{useful_compute, 0.0, 0.0};
  const double baseline = energy_joules(power, ideal, n_procs);
  return actual / baseline - 1.0;
}

double io_power_ratio(const PowerModel& power) {
  const double compute_draw = power.static_watts + power.compute_watts;
  if (!(compute_draw > 0.0)) throw std::domain_error("compute power draw must be positive");
  const double io_draw = power.static_watts + power.io_watts;
  if (!(io_draw >= 0.0)) throw std::domain_error("I/O power draw must be non-negative");
  return io_draw / compute_draw;
}

double energy_optimal_period_rs(const PowerModel& power, double restart_checkpoint_cost,
                                std::uint64_t pairs, double mtbf_proc) {
  // Minimize ρ·C^R/T + (2/3) b λ² T²: same cube-root structure as Eq. (20)
  // with C^R scaled by ρ.
  const double rho = io_power_ratio(power);
  if (!(rho > 0.0)) {
    throw std::domain_error("energy-optimal period undefined for zero I/O draw");
  }
  return t_opt_rs(rho * restart_checkpoint_cost, pairs, mtbf_proc);
}

double energy_overhead_rs(const PowerModel& power, double restart_checkpoint_cost, double t,
                          std::uint64_t pairs, double mtbf_proc) {
  if (!(t > 0.0)) throw std::domain_error("period must be positive");
  if (!(restart_checkpoint_cost > 0.0)) {
    throw std::domain_error("checkpoint+restart cost must be positive");
  }
  if (pairs == 0) throw std::domain_error("need at least one pair");
  if (!(mtbf_proc > 0.0)) throw std::domain_error("MTBF must be positive");
  const double rho = io_power_ratio(power);
  const double lambda = 1.0 / mtbf_proc;
  // Re-executed work burns compute power (weight 1), checkpoints burn ρ.
  return rho * restart_checkpoint_cost / t +
         2.0 / 3.0 * static_cast<double>(pairs) * lambda * lambda * t * t;
}

}  // namespace repcheck::model
