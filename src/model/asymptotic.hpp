// Section 6: asymptotic restart vs no-restart comparison.
//
// Assuming checkpoint technology keeps pace with scale, C = x·M_N for a
// constant x < 1; then the time-to-solution ratio of restart over no-restart
// is independent of N and mu:
//
//     R(x) = ( (9/8 · pi · x²)^{1/3} + 1 ) / ( sqrt(2x) + 1 ).
//
// The paper's headline: restart is up to 8.4% faster, and wins whenever the
// checkpoint takes less than ~2/3 of the MTTI (x < 0.64).
#pragma once

namespace repcheck::model {

/// R(x) for x > 0.
[[nodiscard]] double asymptotic_ratio(double x);

/// The break-even x* where R(x*) = 1 (≈ 0.639); restart wins below it.
[[nodiscard]] double asymptotic_breakeven_x();

/// argmin of R — the checkpoint/MTTI ratio with the largest restart gain.
[[nodiscard]] double asymptotic_best_x();

/// 1 − min R: the maximum fractional gain of restart (≈ 0.084).
[[nodiscard]] double asymptotic_max_gain();

}  // namespace repcheck::model
