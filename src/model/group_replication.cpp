#include "model/group_replication.hpp"

#include <stdexcept>

#include "model/mtti.hpp"
#include "model/overhead.hpp"
#include "model/periods.hpp"

namespace repcheck::model {

namespace {
void require(std::uint64_t n_procs, double mtbf) {
  if (n_procs < 2 || n_procs % 2 != 0) {
    throw std::domain_error("group replication needs an even processor count >= 2");
  }
  if (!(mtbf > 0.0)) throw std::domain_error("MTBF must be positive");
}
}  // namespace

double group_instance_mtbf(std::uint64_t n_procs, double mtbf_proc) {
  require(n_procs, mtbf_proc);
  return mtbf_proc / (static_cast<double>(n_procs) / 2.0);
}

double group_replication_mtti(std::uint64_t n_procs, double mtbf_proc) {
  // One "pair" of instance super-processors: M = 3/2 · instance MTBF.
  return mtti(1, group_instance_mtbf(n_procs, mtbf_proc));
}

double group_replication_t_opt(double restart_checkpoint_cost, std::uint64_t n_procs,
                               double mtbf_proc) {
  return t_opt_rs(restart_checkpoint_cost, 1, group_instance_mtbf(n_procs, mtbf_proc));
}

double group_replication_overhead(double restart_checkpoint_cost, double t,
                                  std::uint64_t n_procs, double mtbf_proc) {
  return overhead_restart(restart_checkpoint_cost, t, 1,
                          group_instance_mtbf(n_procs, mtbf_proc));
}

double process_over_group_mtti_ratio(std::uint64_t n_procs, double mtbf_proc) {
  require(n_procs, mtbf_proc);
  return mtti(n_procs / 2, mtbf_proc) / group_replication_mtti(n_procs, mtbf_proc);
}

}  // namespace repcheck::model
