// Group replication (related work: Benoit et al. [4]).
//
// Instead of pairing individual processes ("process replication", the
// paper's setting), the *whole application* is duplicated as a black box:
// two instances of N/2 processors each execute the same work, checkpoint
// coordinately, and the application is interrupted only when both
// instances have failed within the same period.
//
// An instance fails whenever any of its N/2 processors fails, so it is an
// exponential "super-processor" with MTBF 2μ/N — and the whole system is
// exactly ONE replica pair of such super-processors.  All of Section 4.2's
// single-pair results apply with λ_inst = N λ / 2:
//
//   MTTI_group   = 3 μ / N                       (vs ≈ √(πb)·μ/N for pairs)
//   T_opt^group  = (3 C^R / (4 λ_inst²))^{1/3}
//
// Process replication's MTTI advantage is Θ(√b) — the reason the paper's
// per-process pairing is the right granularity.
#pragma once

#include <cstdint>

namespace repcheck::model {

/// MTBF of one application instance spanning `n_procs`/2 processors.
[[nodiscard]] double group_instance_mtbf(std::uint64_t n_procs, double mtbf_proc);

/// MTTI of the duplicated application: 3/2 of the instance MTBF.
[[nodiscard]] double group_replication_mtti(std::uint64_t n_procs, double mtbf_proc);

/// Restart-optimal period for group replication (Eq. 16 at the instance
/// failure rate).
[[nodiscard]] double group_replication_t_opt(double restart_checkpoint_cost,
                                             std::uint64_t n_procs, double mtbf_proc);

/// First-order restart overhead of group replication at period T.
[[nodiscard]] double group_replication_overhead(double restart_checkpoint_cost, double t,
                                                std::uint64_t n_procs, double mtbf_proc);

/// MTTI ratio process/group — Θ(√b); ≈ √(π N/2)/3 for large N.
[[nodiscard]] double process_over_group_mtti_ratio(std::uint64_t n_procs, double mtbf_proc);

}  // namespace repcheck::model
