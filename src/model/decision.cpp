#include "model/decision.hpp"

#include <stdexcept>

#include "model/overhead.hpp"
#include "model/periods.hpp"

namespace repcheck::model {

Advice decide(const PlatformSpec& platform, const AmdahlApp& app, double w_seq) {
  if (platform.n_procs == 0 || platform.n_procs % 2 != 0) {
    throw std::domain_error("decide requires a positive even processor count");
  }
  if (!(platform.mtbf_proc > 0.0)) throw std::domain_error("MTBF must be positive");
  if (!(platform.restart_checkpoint_cost >= platform.checkpoint_cost)) {
    throw std::domain_error("C^R must be at least C");
  }
  const std::uint64_t n = platform.n_procs;
  const std::uint64_t pairs = n / 2;

  Advice advice;
  // No-replication side: the first-order sqrt(2CNλ) badly underestimates
  // once λ(T+C) is not small — exactly the regime where the decision
  // matters (Figs. 9/10 crossovers) — so use the exact expected-time model
  // with its numerically optimized period.
  const double domain_mtbf = platform.mtbf_proc / static_cast<double>(n);
  const double t_norep = exact_noreplication_period(
      platform.checkpoint_cost, platform.downtime, platform.recovery_cost, domain_mtbf);
  advice.overhead_noreplication =
      overhead_noreplication_exact(platform.checkpoint_cost, platform.downtime,
                                   platform.recovery_cost, domain_mtbf, t_norep);
  advice.overhead_replicated_restart =
      h_opt_rs(platform.restart_checkpoint_cost, pairs, platform.mtbf_proc);

  advice.tts_noreplication =
      time_to_solution_noreplication(w_seq, n, app.gamma, advice.overhead_noreplication);
  advice.tts_replicated_restart = time_to_solution_replicated(
      w_seq, n, app.gamma, app.alpha, advice.overhead_replicated_restart);

  const double t_no = t_mtti_no(platform.checkpoint_cost, pairs, platform.mtbf_proc);
  const double h_no = overhead_no_restart(platform.checkpoint_cost, t_no, pairs,
                                          platform.mtbf_proc);
  advice.tts_replicated_norestart =
      time_to_solution_replicated(w_seq, n, app.gamma, app.alpha, h_no);

  if (advice.tts_replicated_restart < advice.tts_noreplication) {
    advice.plan = Plan::kReplicatedRestart;
    advice.period = t_opt_rs(platform.restart_checkpoint_cost, pairs, platform.mtbf_proc);
    advice.advantage = advice.tts_replicated_restart / advice.tts_noreplication;
  } else {
    advice.plan = Plan::kNoReplication;
    advice.period = t_norep;
    advice.advantage = advice.tts_noreplication / advice.tts_replicated_restart;
  }
  return advice;
}

}  // namespace repcheck::model
