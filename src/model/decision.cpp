#include "model/decision.hpp"

#include <cmath>
#include <stdexcept>

#include "model/overhead.hpp"
#include "model/periods.hpp"

namespace repcheck::model {

namespace {

/// NaN never compares, so every bound below is written as !(value in range)
/// — a NaN input fails the first check that looks at it.
void require_finite(double value, const char* field, const char* what) {
  if (std::isnan(value)) throw SpecError(field, std::string(what) + " is NaN");
}

}  // namespace

void validate(const PlatformSpec& platform) {
  if (platform.n_procs == 0 || platform.n_procs % 2 != 0) {
    throw SpecError("n_procs", "processor count must be positive and even, got " +
                                   std::to_string(platform.n_procs));
  }
  require_finite(platform.mtbf_proc, "mtbf_proc", "individual MTBF");
  if (!(platform.mtbf_proc > 0.0)) {
    throw SpecError("mtbf_proc", "individual MTBF must be positive");
  }
  require_finite(platform.checkpoint_cost, "checkpoint_cost", "checkpoint cost C");
  if (!(platform.checkpoint_cost > 0.0) || std::isinf(platform.checkpoint_cost)) {
    throw SpecError("checkpoint_cost", "checkpoint cost C must be positive and finite");
  }
  require_finite(platform.restart_checkpoint_cost, "restart_checkpoint_cost",
                 "restart checkpoint cost C^R");
  if (!(platform.restart_checkpoint_cost >= platform.checkpoint_cost) ||
      !(platform.restart_checkpoint_cost <= 2.0 * platform.checkpoint_cost)) {
    throw SpecError("restart_checkpoint_cost",
                    "C^R must lie in [C, 2C] (restarts add at most one extra checkpoint)");
  }
  require_finite(platform.recovery_cost, "recovery_cost", "recovery cost R");
  if (!(platform.recovery_cost >= 0.0) || std::isinf(platform.recovery_cost)) {
    throw SpecError("recovery_cost", "recovery cost R must be non-negative and finite");
  }
  require_finite(platform.downtime, "downtime", "downtime D");
  if (!(platform.downtime >= 0.0) || std::isinf(platform.downtime)) {
    throw SpecError("downtime", "downtime D must be non-negative and finite");
  }
}

void validate(const AmdahlApp& app, double w_seq) {
  require_finite(app.gamma, "gamma", "sequential fraction gamma");
  if (!(app.gamma >= 0.0 && app.gamma <= 1.0)) {
    throw SpecError("gamma", "sequential fraction gamma must lie in [0, 1]");
  }
  require_finite(app.alpha, "alpha", "replication slowdown alpha");
  if (!(app.alpha >= 0.0) || std::isinf(app.alpha)) {
    throw SpecError("alpha", "replication slowdown alpha must be non-negative and finite");
  }
  require_finite(w_seq, "w_seq", "sequential work");
  if (!(w_seq > 0.0) || std::isinf(w_seq)) {
    throw SpecError("w_seq", "sequential work must be positive and finite");
  }
}

Advice decide(const PlatformSpec& platform, const AmdahlApp& app, double w_seq) {
  validate(platform);
  validate(app, w_seq);
  const std::uint64_t n = platform.n_procs;
  const std::uint64_t pairs = n / 2;

  Advice advice;
  // No-replication side: the first-order sqrt(2CNλ) badly underestimates
  // once λ(T+C) is not small — exactly the regime where the decision
  // matters (Figs. 9/10 crossovers) — so use the exact expected-time model
  // with its numerically optimized period.
  const double domain_mtbf = platform.mtbf_proc / static_cast<double>(n);
  const double t_norep = exact_noreplication_period(
      platform.checkpoint_cost, platform.downtime, platform.recovery_cost, domain_mtbf);
  advice.overhead_noreplication =
      overhead_noreplication_exact(platform.checkpoint_cost, platform.downtime,
                                   platform.recovery_cost, domain_mtbf, t_norep);
  advice.overhead_replicated_restart =
      h_opt_rs(platform.restart_checkpoint_cost, pairs, platform.mtbf_proc);

  advice.tts_noreplication =
      time_to_solution_noreplication(w_seq, n, app.gamma, advice.overhead_noreplication);
  advice.tts_replicated_restart = time_to_solution_replicated(
      w_seq, n, app.gamma, app.alpha, advice.overhead_replicated_restart);

  const double t_no = t_mtti_no(platform.checkpoint_cost, pairs, platform.mtbf_proc);
  const double h_no = overhead_no_restart(platform.checkpoint_cost, t_no, pairs,
                                          platform.mtbf_proc);
  advice.tts_replicated_norestart =
      time_to_solution_replicated(w_seq, n, app.gamma, app.alpha, h_no);

  if (advice.tts_replicated_restart < advice.tts_noreplication) {
    advice.plan = Plan::kReplicatedRestart;
    advice.period = t_opt_rs(platform.restart_checkpoint_cost, pairs, platform.mtbf_proc);
    advice.advantage = advice.tts_replicated_restart / advice.tts_noreplication;
  } else {
    advice.plan = Plan::kNoReplication;
    advice.period = t_norep;
    advice.advantage = advice.tts_noreplication / advice.tts_replicated_restart;
  }
  return advice;
}

}  // namespace repcheck::model
