// Mean Time To Interruption and interruption-time distributions.
//
// Implements Eq. (8), M_2b = n_fail(2b)·mu/(2b), plus the exact survival /
// CDF curves that Figure 1 plots: a single processor, n parallel processors
// (any failure is fatal), and b replicated pairs (a pair must lose both).
#pragma once

#include <cstdint>

namespace repcheck::model {

/// Application MTTI with `pairs` replicated pairs, per-processor MTBF
/// `mtbf_proc` seconds (Eq. 8 with the Theorem 4.1 closed form).
[[nodiscard]] double mtti(std::uint64_t pairs, double mtbf_proc);

/// Cross-check: MTTI as ∫_0^∞ survival_pairs(t) dt by quadrature.
[[nodiscard]] double mtti_integral(std::uint64_t pairs, double mtbf_proc);

/// Remaining MTTI of a platform whose state already has `degraded` pairs
/// with one dead replica each: N(degraded)·μ/(2b).  mtti_degraded(b, 0, μ)
/// equals mtti(b, μ); the value shrinks as damage accumulates — the basis
/// of the adaptive no-restart period extension.
[[nodiscard]] double mtti_degraded(std::uint64_t pairs, std::uint64_t degraded,
                                   double mtbf_proc);

/// P(no fatal failure by time t) for one processor of MTBF mtbf_proc.
[[nodiscard]] double survival_single(double t, double mtbf_proc);

/// P(no fatal failure by t) for n parallel (non-replicated) processors:
/// any single failure interrupts the application.
[[nodiscard]] double survival_parallel(double t, double mtbf_proc, std::uint64_t n);

/// P(no fatal failure by t) for b replicated pairs:
/// (1 - (1 - e^{-lambda t})^2)^b.
[[nodiscard]] double survival_pairs(double t, double mtbf_proc, std::uint64_t pairs);

/// CDFs (1 - survival) of the time to application interruption.
[[nodiscard]] double cdf_single(double t, double mtbf_proc);
[[nodiscard]] double cdf_parallel(double t, double mtbf_proc, std::uint64_t n);
[[nodiscard]] double cdf_pairs(double t, double mtbf_proc, std::uint64_t pairs);

/// Time at which the interruption probability reaches p (closed forms);
/// e.g. Fig. 1's "time to reach 90% chance of fatal failure".
[[nodiscard]] double time_to_failure_probability_single(double p, double mtbf_proc);
[[nodiscard]] double time_to_failure_probability_parallel(double p, double mtbf_proc,
                                                          std::uint64_t n);
[[nodiscard]] double time_to_failure_probability_pairs(double p, double mtbf_proc,
                                                       std::uint64_t pairs);

}  // namespace repcheck::model
