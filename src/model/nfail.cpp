#include "model/nfail.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "math/beta.hpp"
#include "math/gamma.hpp"
#include "math/ramanujan.hpp"

namespace repcheck::model {

namespace {
void require_pairs(std::uint64_t pairs) {
  if (pairs == 0) throw std::domain_error("n_fail requires at least one processor pair");
}
}  // namespace

double nfail_closed_form(std::uint64_t pairs) {
  require_pairs(pairs);
  const double b = static_cast<double>(pairs);
  const double log_term = b * std::log(4.0) - math::log_binomial(2 * pairs, pairs);
  return 1.0 + std::exp(log_term);
}

double nfail_recursive(std::uint64_t pairs) {
  require_pairs(pairs);
  const double n = static_cast<double>(2 * pairs);
  // N(k) = expected failures until interruption given k degraded pairs:
  //   N(k) = 1 + (k/n)·N(k)  + ((n-2k)/n)·N(k+1),   N evaluated backwards
  // (the k/n "fatal" branch contributes only the final failure itself).
  double next = 0.0;  // N(b) computed in the first iteration below
  for (std::uint64_t k = pairs;; --k) {
    const double kd = static_cast<double>(k);
    const double fresh = (n - 2.0 * kd) / n;
    const double wasted = kd / n;
    next = (1.0 + fresh * next) / (1.0 - wasted);
    if (k == 0) break;
  }
  return next;
}

double nfail_integral(std::uint64_t pairs) {
  require_pairs(pairs);
  const double b = static_cast<double>(pairs);
  // 2b·4^b·B(1/2; b, b+1), with the incomplete Beta in log space:
  // B(x; a, c) = I_x(a, c) · B(a, c).
  const double reg = math::regularized_incomplete_beta(b, b + 1.0, 0.5);
  const double log_value =
      std::log(2.0 * b) + b * std::log(4.0) + std::log(reg) + math::log_beta(b, b + 1.0);
  return std::exp(log_value);
}

std::vector<double> nfail_from_degraded(std::uint64_t pairs) {
  require_pairs(pairs);
  const double n = static_cast<double>(2 * pairs);
  // Same recursion as nfail_recursive, keeping every intermediate N(k).
  std::vector<double> table(pairs + 1, 0.0);
  double next = 0.0;
  for (std::uint64_t k = pairs;; --k) {
    const double kd = static_cast<double>(k);
    const double fresh = (n - 2.0 * kd) / n;
    const double wasted = kd / n;
    next = (1.0 + fresh * next) / (1.0 - wasted);
    table[k] = next;
    if (k == 0) break;
  }
  return table;
}

double nfail_asymptotic(std::uint64_t pairs) {
  require_pairs(pairs);
  return std::sqrt(std::numbers::pi * static_cast<double>(pairs));
}

double nfail_birthday_estimate(std::uint64_t pairs) {
  require_pairs(pairs);
  return 1.0 + math::ramanujan_q(pairs);
}

}  // namespace repcheck::model
