#include "model/multilevel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/roots.hpp"
#include "model/periods.hpp"

namespace repcheck::model {

namespace {
void validate(const TwoLevelCosts& costs, std::uint64_t pairs, double mtbf) {
  if (!(costs.buddy_checkpoint > 0.0)) throw std::domain_error("buddy cost must be positive");
  if (!(costs.pfs_flush >= 0.0)) throw std::domain_error("flush cost must be non-negative");
  if (!(costs.pfs_recovery >= 0.0)) throw std::domain_error("recovery must be non-negative");
  if (!(costs.downtime >= 0.0)) throw std::domain_error("downtime must be non-negative");
  if (pairs == 0) throw std::domain_error("need at least one pair");
  if (!(mtbf > 0.0)) throw std::domain_error("MTBF must be positive");
}
}  // namespace

double two_level_overhead(const TwoLevelCosts& costs, double t, double k, std::uint64_t pairs,
                          double mtbf_proc) {
  validate(costs, pairs, mtbf_proc);
  if (!(t > 0.0)) throw std::domain_error("period must be positive");
  if (!(k >= 1.0)) throw std::domain_error("flush cadence must be at least 1");
  const double lambda = 1.0 / mtbf_proc;
  const double crash_rate = static_cast<double>(pairs) * lambda * lambda * t;  // per work-second
  const double loss = 2.0 * t / 3.0 + (k - 1.0) * (t + costs.buddy_checkpoint) / 2.0 +
                      costs.pfs_recovery + costs.downtime;
  return (costs.buddy_checkpoint + costs.pfs_flush / k) / t + crash_rate * loss;
}

double two_level_flush_interval(const TwoLevelCosts& costs, double t, std::uint64_t pairs,
                                double mtbf_proc) {
  validate(costs, pairs, mtbf_proc);
  if (!(t > 0.0)) throw std::domain_error("period must be positive");
  if (costs.pfs_flush == 0.0) return 1.0;  // flushes are free: flush always
  const double lambda = 1.0 / mtbf_proc;
  const double k = std::sqrt(2.0 * costs.pfs_flush /
                             (static_cast<double>(pairs) * lambda * lambda * t * t *
                              (t + costs.buddy_checkpoint)));
  return std::max(1.0, k);
}

TwoLevelPlan optimize_two_level(const TwoLevelCosts& costs, std::uint64_t pairs,
                                double mtbf_proc) {
  validate(costs, pairs, mtbf_proc);
  // Seed with the single-level optimum at the buddy cost, then minimize the
  // T -> H(T, k*(T)) profile (k eliminated by its closed form).
  const double seed = t_opt_rs(costs.buddy_checkpoint, pairs, mtbf_proc);
  const auto profile = [&](double t) {
    const double k = two_level_flush_interval(costs, t, pairs, mtbf_proc);
    return two_level_overhead(costs, t, k, pairs, mtbf_proc);
  };
  const auto best = math::minimize_unbounded(profile, seed, 1e-4 * seed);
  TwoLevelPlan plan;
  plan.period = best.x;
  plan.flush_every = two_level_flush_interval(costs, best.x, pairs, mtbf_proc);
  plan.predicted_overhead = best.fx;
  return plan;
}

}  // namespace repcheck::model
