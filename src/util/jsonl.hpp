// Flat JSONL records for the campaign result cache and journal.
//
// A record is one line: a JSON object whose values are numbers, strings or
// booleans (no nesting — flatten with dotted keys).  Doubles render in
// shortest round-trip form (std::to_chars), so a value survives
// write → parse bit-identically; that property is what makes resumed
// campaigns merge to the same bits as uninterrupted ones.  Non-finite
// doubles render as the bare tokens nan/inf/-inf (a deliberate deviation
// from strict JSON, parsed back by parse_jsonl).
//
// parse_jsonl returns nullopt on anything malformed — including the
// truncated final line a killed writer leaves behind — so loaders can
// skip damage instead of aborting.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace repcheck::util {

using JsonScalar = std::variant<double, std::string, bool>;
using JsonObject = std::map<std::string, JsonScalar, std::less<>>;

/// Shortest decimal string that parses back to exactly `v`.
[[nodiscard]] std::string format_double(double v);

/// Inverse of format_double; nullopt unless the whole token is consumed.
[[nodiscard]] std::optional<double> parse_double(std::string_view token);

/// JSON string escaping (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Renders one record as a single line (no trailing newline), keys sorted.
[[nodiscard]] std::string to_jsonl(const JsonObject& record);

/// Parses one line; nullopt on malformed or truncated input.
[[nodiscard]] std::optional<JsonObject> parse_jsonl(std::string_view line);

}  // namespace repcheck::util
