#include "util/interrupt.hpp"

#include <csignal>
#include <cstdlib>
#include <unistd.h>

#include "telemetry/flight_recorder.hpp"

namespace repcheck::util {

namespace {

std::atomic<bool> g_drain{false};
std::atomic<int> g_signal_count{0};

extern "C" void drain_signal_handler(int signo) {
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) == 0) {
    g_drain.store(true, std::memory_order_relaxed);
    static const char msg[] =
        "\n[repcheck] drain requested: finishing in-flight shards, flushing stores "
        "(signal again to force-exit)\n";
    // write(2) is async-signal-safe; stdio is not.
    const ssize_t ignored = write(STDERR_FILENO, msg, sizeof(msg) - 1);
    (void)ignored;
  } else {
    // Forced exit: leave a post-mortem when the flight recorder is armed
    // (the dump path is async-signal-safe and a no-op when unarmed).
    telemetry::flight_recorder_dump("forced exit on second signal");
    _exit(128 + signo);
  }
}

}  // namespace

const std::atomic<bool>& install_drain_handler() {
  struct sigaction action{};
  action.sa_handler = drain_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESETHAND: the second signal must reach us too
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  return g_drain;
}

const std::atomic<bool>& drain_flag() { return g_drain; }

bool drain_requested() { return g_drain.load(std::memory_order_relaxed); }

void reset_drain_for_testing() {
  g_drain.store(false, std::memory_order_relaxed);
  g_signal_count.store(0, std::memory_order_relaxed);
}

}  // namespace repcheck::util
