#include "util/flags.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace repcheck::util {

FlagSet::FlagSet(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

FlagSet::Flag& FlagSet::insert(std::string name, Value def, std::string help) {
  auto [it, inserted] = flags_.try_emplace(std::move(name), Flag{std::move(def), std::move(help)});
  if (!inserted) {
    throw std::logic_error("duplicate flag: --" + it->first);
  }
  return it->second;
}

const std::int64_t* FlagSet::add_int64(std::string name, std::int64_t def, std::string help) {
  return &std::get<std::int64_t>(insert(std::move(name), def, std::move(help)).value);
}

const double* FlagSet::add_double(std::string name, double def, std::string help) {
  return &std::get<double>(insert(std::move(name), def, std::move(help)).value);
}

const std::string* FlagSet::add_string(std::string name, std::string def, std::string help) {
  return &std::get<std::string>(insert(std::move(name), std::move(def), std::move(help)).value);
}

const bool* FlagSet::add_bool(std::string name, bool def, std::string help) {
  return &std::get<bool>(insert(std::move(name), def, std::move(help)).value);
}

void FlagSet::assign(Flag& flag, const std::string& name, const std::string& text) {
  try {
    if (std::holds_alternative<std::int64_t>(flag.value)) {
      std::size_t pos = 0;
      flag.value = static_cast<std::int64_t>(std::stoll(text, &pos));
      if (pos != text.size()) throw std::invalid_argument(text);
    } else if (std::holds_alternative<double>(flag.value)) {
      std::size_t pos = 0;
      flag.value = std::stod(text, &pos);
      if (pos != text.size()) throw std::invalid_argument(text);
    } else if (std::holds_alternative<bool>(flag.value)) {
      if (text == "true" || text == "1") {
        flag.value = true;
      } else if (text == "false" || text == "0") {
        flag.value = false;
      } else {
        throw std::invalid_argument(text);
      }
    } else {
      flag.value = text;
    }
  } catch (const std::exception&) {
    throw std::invalid_argument("bad value for --" + name + ": '" + text + "'");
  }
  flag.was_set = true;
}

bool FlagSet::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: '" + arg + "'");
    }
    std::string name = arg.substr(2);
    std::optional<std::string> value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name.resize(eq);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw std::invalid_argument("unknown flag: --" + name + "\n" + usage());
    }
    if (!value) {
      if (std::holds_alternative<bool>(it->second.value) &&
          (i + 1 >= argc || std::string_view(argv[i + 1]).rfind("--", 0) == 0)) {
        value = "true";  // bare boolean flag
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::invalid_argument("missing value for --" + name);
      }
    }
    assign(it->second, name, *value);
  }
  return true;
}

std::string FlagSet::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name;
    std::visit(
        [&os](const auto& v) {
          using T = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<T, bool>) {
            os << " (bool, default " << (v ? "true" : "false") << ")";
          } else if constexpr (std::is_same_v<T, std::string>) {
            os << " (string, default '" << v << "')";
          } else {
            os << " (default " << v << ")";
          }
        },
        flag.value);
    os << "\n      " << flag.help << "\n";
  }
  return os.str();
}

bool FlagSet::provided(std::string_view name) const {
  auto it = flags_.find(name);
  return it != flags_.end() && it->second.was_set;
}

}  // namespace repcheck::util
