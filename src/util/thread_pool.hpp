// Fixed-size thread pool with a blocking, work-stealing parallel_for.
//
// Monte-Carlo replicates are embarrassingly parallel but not uniform: a
// crash-heavy replicate can cost many times a quiet one, so parallel_for
// uses dynamic fixed-grain scheduling — the range is cut into chunks a few
// per lane and every participant claims the next chunk from an atomic
// counter until none remain.  While a caller's chunks are still running on
// other threads, the caller *helps drain the task queue* instead of
// blocking.  That help-drain is also what makes nesting safe: a pool worker
// whose task re-enters parallel_for executes its own (or anyone's) pending
// sub-chunks while it waits, so no configuration of nested calls can leave
// every worker blocked on chunks nobody is free to claim.  On a single-core
// host the pool degrades gracefully to serial execution (zero worker case).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace repcheck::util {

class ThreadPool {
 public:
  /// `threads == 0` means run everything inline on the calling thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs fn(begin, end) over dynamically claimed subranges of [0, n)
  /// across the pool and the calling thread; returns when all chunks are
  /// done.  Safe to call from inside a pool task (the waiting thread helps
  /// run queued work, so nested calls cannot deadlock).  Exceptions from
  /// chunks are captured and the first one is rethrown on the caller after
  /// every chunk has run.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// A process-wide pool sized to the hardware (creatable lazily).
  static ThreadPool& shared();

 private:
  void worker_loop();
  /// Pops and runs one queued task if any; returns whether it ran one.
  bool help_run_one_task();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace repcheck::util
