// Fixed-size thread pool with a blocking parallel_for.
//
// Monte-Carlo replicates are embarrassingly parallel: parallel_for splits the
// index range into contiguous chunks so each worker touches its own RNG
// stream and accumulator, and the caller merges afterwards.  On a single-core
// host the pool degrades gracefully to serial execution (zero worker case).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace repcheck::util {

class ThreadPool {
 public:
  /// `threads == 0` means run everything inline on the calling thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Runs fn(begin, end) over chunked subranges of [0, n) across the pool and
  /// the calling thread; returns when all chunks are done.  Exceptions from
  /// chunks are captured and the first one is rethrown on the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// A process-wide pool sized to the hardware (creatable lazily).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace repcheck::util
