// Fixed-capacity ring buffer.
//
// Used for sliding-window statistics over failure streams (e.g. the burst
// detector in the trace module keeps the last K inter-arrival times).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace repcheck::util {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {
    if (capacity == 0) throw std::invalid_argument("ring buffer capacity must be positive");
  }

  /// Appends a value, evicting the oldest when full.
  void push(const T& value) {
    data_[head_] = value;
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == data_.size(); }

  /// Element `i` counted from the oldest retained value (0 = oldest).
  [[nodiscard]] const T& operator[](std::size_t i) const {
    if (i >= size_) throw std::out_of_range("ring buffer index");
    const std::size_t start = (head_ + data_.size() - size_) % data_.size();
    return data_[(start + i) % data_.size()];
  }

  /// Most recently pushed value.
  [[nodiscard]] const T& back() const {
    if (empty()) throw std::out_of_range("ring buffer empty");
    return data_[(head_ + data_.size() - 1) % data_.size()];
  }

  void clear() {
    size_ = 0;
    head_ = 0;
  }

 private:
  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace repcheck::util
