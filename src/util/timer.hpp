// Wall-clock scoped timer for experiment progress reporting.
#pragma once

#include <chrono>

namespace repcheck::util {

/// Measures elapsed wall time since construction (or the last reset), with
/// a secondary lap mark for interval timing: `seconds()` is the total,
/// `lap_seconds()` the stretch since the last `lap()`.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()), lap_(start_) {}

  void reset() {
    start_ = Clock::now();
    lap_ = start_;
  }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Seconds since the last lap() (or reset/construction); read-only.
  [[nodiscard]] double lap_seconds() const {
    return std::chrono::duration<double>(Clock::now() - lap_).count();
  }

  /// Closes the current lap: returns its length and starts the next one.
  double lap() {
    const auto now = Clock::now();
    const double secs = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return secs;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace repcheck::util
