// Wall-clock scoped timer for experiment progress reporting.
#pragma once

#include <chrono>

namespace repcheck::util {

/// Measures elapsed wall time since construction (or the last reset).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace repcheck::util
