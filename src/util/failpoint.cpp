#include "util/failpoint.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace repcheck::util::failpoint {

namespace {

// Aggregate hit/fire totals across all armed sites.  Only the armed path
// pays for these; the disarmed fast path stays a single relaxed load.
// Per-site counts come from hit_count()/armed_sites() at report time.
telemetry::Counter& fp_hits_counter() {
  static telemetry::Counter& c = telemetry::counter("failpoint.hits");
  return c;
}
telemetry::Counter& fp_fired_counter() {
  static telemetry::Counter& c = telemetry::counter("failpoint.fired");
  return c;
}

enum class Kind { kOff, kHit, kEvery, kProb };

struct Site {
  Kind kind = Kind::kOff;
  std::uint64_t n = 0;       // hit:N / every:N threshold
  double p = 0.0;            // prob:P probability
  std::uint64_t prng = 0;    // SplitMix64 state for prob
  std::uint64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Site, std::less<>> sites;
};

// Leaked on purpose: failpoints may be consulted from worker threads that
// outlive static destruction order.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

std::atomic<int> g_armed{0};

// Local SplitMix64 step (prng/splitmix64.hpp mirrors this; duplicated so
// util does not depend on prng).
std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  if (text.empty()) throw std::invalid_argument("failpoint policy: empty " + std::string(what));
  std::uint64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') {
      throw std::invalid_argument("failpoint policy: bad " + std::string(what) + " '" +
                                  std::string(text) + "'");
    }
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return value;
}

Site parse_policy(std::string_view policy) {
  Site site;
  if (policy == "off") {
    site.kind = Kind::kOff;
    return site;
  }
  const std::size_t colon = policy.find(':');
  const std::string_view head = policy.substr(0, colon);
  const std::string_view rest =
      colon == std::string_view::npos ? std::string_view{} : policy.substr(colon + 1);
  if (head == "hit") {
    site.kind = Kind::kHit;
    site.n = parse_u64(rest, "hit count");
    if (site.n == 0) throw std::invalid_argument("failpoint policy: hit:N needs N >= 1");
    return site;
  }
  if (head == "every") {
    site.kind = Kind::kEvery;
    site.n = parse_u64(rest, "period");
    if (site.n == 0) throw std::invalid_argument("failpoint policy: every:N needs N >= 1");
    return site;
  }
  if (head == "prob") {
    site.kind = Kind::kProb;
    const std::size_t colon2 = rest.find(':');
    const std::string_view prob_text = rest.substr(0, colon2);
    try {
      site.p = std::stod(std::string(prob_text));
    } catch (const std::exception&) {
      throw std::invalid_argument("failpoint policy: bad probability '" + std::string(prob_text) +
                                  "'");
    }
    if (!(site.p >= 0.0) || !(site.p <= 1.0)) {
      throw std::invalid_argument("failpoint policy: probability must be in [0, 1]");
    }
    site.prng = colon2 == std::string_view::npos ? 1 : parse_u64(rest.substr(colon2 + 1), "seed");
    return site;
  }
  throw std::invalid_argument("failpoint policy '" + std::string(policy) +
                              "' is not hit:N | every:N | prob:P[:S] | off");
}

// Parse REPCHECK_FAILPOINTS during static initialization so env-armed
// sites are live before main().  Errors cannot throw here; report and skip.
const bool g_env_loaded = [] {
  const char* env = std::getenv("REPCHECK_FAILPOINTS");
  if (env == nullptr || *env == '\0') return true;
  try {
    arm_from_spec(env);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[failpoint] ignoring malformed REPCHECK_FAILPOINTS: %s\n", e.what());
  }
  return true;
}();

}  // namespace

int armed_count() noexcept { return g_armed.load(std::memory_order_relaxed); }

void arm(std::string_view site, std::string_view policy) {
  if (site.empty()) throw std::invalid_argument("failpoint site name is empty");
  Site parsed = parse_policy(policy);
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto [it, inserted] = reg.sites.insert_or_assign(std::string(site), parsed);
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void arm_from_spec(std::string_view spec) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string_view entry =
        spec.substr(pos, semi == std::string_view::npos ? std::string_view::npos : semi - pos);
    pos = semi == std::string_view::npos ? spec.size() + 1 : semi + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("failpoint spec entry '" + std::string(entry) +
                                  "' is not site=policy");
    }
    arm(entry.substr(0, eq), entry.substr(eq + 1));
  }
}

void disarm(std::string_view site) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return;
  reg.sites.erase(it);
  g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  g_armed.fetch_sub(static_cast<int>(reg.sites.size()), std::memory_order_relaxed);
  reg.sites.clear();
}

bool fires(std::string_view site) {
  const bool fired = [&] {
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.sites.find(site);
    if (it == reg.sites.end()) return false;
    Site& s = it->second;
    ++s.hits;
    fp_hits_counter().inc();
    switch (s.kind) {
      case Kind::kOff:
        return false;
      case Kind::kHit:
        return s.hits == s.n;
      case Kind::kEvery:
        return s.hits % s.n == 0;
      case Kind::kProb: {
        const double u =
            static_cast<double>(splitmix64_next(s.prng) >> 11) * 0x1.0p-53;  // [0, 1)
        return u < s.p;
      }
    }
    return false;
  }();
  if (fired) fp_fired_counter().inc();
  return fired;
}

std::uint64_t hit_count(std::string_view site) {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::vector<std::string> armed_sites() {
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.sites.size());
  for (const auto& [name, site] : reg.sites) names.push_back(name);
  return names;
}

}  // namespace repcheck::util::failpoint
