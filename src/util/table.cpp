#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace repcheck::util {

Table::Table(std::vector<std::string> columns, int precision)
    : columns_(std::move(columns)), precision_(precision) {
  if (columns_.empty()) throw std::invalid_argument("table needs at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("row width mismatch: expected " + std::to_string(columns_.size()) +
                                " cells, got " + std::to_string(row.size()));
  }
  rows_.push_back(std::move(row));
}

void Table::add_numeric_row(const std::vector<double>& row) {
  std::vector<Cell> cells(row.begin(), row.end());
  add_row(std::move(cells));
}

const Cell& Table::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::string Table::render(const Cell& cell) const {
  std::ostringstream os;
  if (std::holds_alternative<std::monostate>(cell)) {
    os << "-";
  } else if (const auto* d = std::get_if<double>(&cell)) {
    if (std::isnan(*d)) {
      // Canonical spelling regardless of sign bit, so broken configs are
      // grep-able and cannot be mistaken for a negative measurement.
      os << "nan";
    } else {
      os << std::setprecision(precision_) << std::defaultfloat << *d;
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&cell)) {
    os << *i;
  } else {
    os << std::get<std::string>(cell);
  }
  return os.str();
}

void Table::print_aligned(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    auto& out = rendered.emplace_back();
    out.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.push_back(render(row[c]));
      width[c] = std::max(width[c], out.back().size());
    }
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::setw(static_cast<int>(width[c])) << columns_[c] << (c + 1 < columns_.size() ? "  " : "");
  }
  os << '\n';
  for (const auto& row : rendered) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << row[c] << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  }
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << (c + 1 < columns_.size() ? "," : "");
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << render(row[c]) << (c + 1 < row.size() ? "," : "");
    }
    os << '\n';
  }
}

void Table::print(std::ostream& os, bool csv) const {
  if (csv) {
    print_csv(os);
  } else {
    print_aligned(os);
  }
}

}  // namespace repcheck::util
