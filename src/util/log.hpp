// Tiny leveled logger.
//
// Experiments are long-running; the logger gives timestamped progress lines
// on stderr without pulling in a dependency.  Thread-safe (one mutex around
// the actual write), level-filtered at runtime via set_level or the
// REPCHECK_LOG environment variable (error|warn|info|debug).
//
// Output format: human-readable "[sec.ms LEVEL] message" by default, or one
// JSON object per line ({"level","msg","ts_ms"}) when REPCHECK_LOG_FORMAT
// is "jsonl" (or after set_log_format(LogFormat::kJsonl)) — for piping
// campaign logs into jq or a log collector.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace repcheck::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

enum class LogFormat : int { kHuman = 0, kJsonl = 1 };

/// Sets the global log threshold; messages above it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Sets the sink format (default kHuman, or REPCHECK_LOG_FORMAT=jsonl).
void set_log_format(LogFormat format);
[[nodiscard]] LogFormat log_format();

/// Parses "error"/"warn"/"info"/"debug"; unknown strings map to kInfo.
[[nodiscard]] LogLevel parse_log_level(const std::string& text);

/// Renders one JSONL log record ({"level","msg","ts_ms"}, no trailing
/// newline) — exposed so tests can pin the format without parsing stderr.
[[nodiscard]] std::string render_jsonl_log_line(LogLevel level, const std::string& message,
                                                std::int64_t ts_ms);

/// Writes one timestamped line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }

}  // namespace repcheck::util
