// Tiny leveled logger.
//
// Experiments are long-running; the logger gives timestamped progress lines
// on stderr without pulling in a dependency.  Thread-safe (one mutex around
// the actual write), level-filtered at runtime via set_level or the
// REPCHECK_LOG environment variable (error|warn|info|debug).
#pragma once

#include <sstream>
#include <string>

namespace repcheck::util {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Sets the global log threshold; messages above it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses "error"/"warn"/"info"/"debug"; unknown strings map to kInfo.
[[nodiscard]] LogLevel parse_log_level(const std::string& text);

/// Writes one timestamped line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }

}  // namespace repcheck::util
