// Deterministic failpoint / fault-injection facility.
//
// A failpoint is a named site in production code where a test (or an
// operator, via the REPCHECK_FAILPOINTS environment variable) can inject a
// failure: the site asks `fires(...)` whether its armed trigger policy
// fires on this hit, and the surrounding code decides what the failure
// looks like (throw, torn write, corrupted record, stall, ...).
//
// Trigger policies (the spec grammar, also used by REPCHECK_FAILPOINTS):
//
//   hit:N        fire on exactly the Nth hit (1-based), once
//   every:N      fire on every Nth hit (N, 2N, 3N, ...)
//   prob:P[:S]   fire with probability P per hit, SplitMix64 PRNG seeded
//                with S (default seed 1) — deterministic across reruns
//   off          never fire (site stays registered, hits still counted)
//
// REPCHECK_FAILPOINTS holds a ';'-separated list of site=policy entries,
// e.g.  REPCHECK_FAILPOINTS="campaign.cache.corrupt_record=hit:1" — parsed
// once during static initialization, so sites armed via the environment
// are live before main().
//
// Cost when disarmed: the REPCHECK_FAILPOINT macro is a single relaxed
// atomic load of the armed-site count, and the site name expression is not
// even evaluated (short-circuit).  The micro-benchmark pair
// BM_EngineRunNoFailpoint / BM_EngineRunDisarmedFailpoint tracks that this
// stays free.  Armed sites take a mutex per hit — failure injection is not
// a hot path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace repcheck::util::failpoint {

/// Number of currently armed sites.  The disarmed fast path is one relaxed
/// load of this counter.
[[nodiscard]] int armed_count() noexcept;

/// Arms `site` with a trigger policy ("hit:N" | "every:N" | "prob:P[:S]" |
/// "off").  Re-arming an armed site resets its hit counter and PRNG.
/// Throws std::invalid_argument on a malformed policy.
void arm(std::string_view site, std::string_view policy);

/// Arms every entry of a "site=policy;site=policy" spec (the
/// REPCHECK_FAILPOINTS grammar).  Throws on malformed entries.
void arm_from_spec(std::string_view spec);

/// Disarms one site / every site.  Disarming an unknown site is a no-op.
void disarm(std::string_view site);
void disarm_all();

/// Records a hit at `site` and returns true when the site is armed and its
/// policy fires on this hit.  Unarmed sites return false without counting.
[[nodiscard]] bool fires(std::string_view site);

/// Hits observed at `site` since it was (re-)armed; 0 for unarmed sites.
[[nodiscard]] std::uint64_t hit_count(std::string_view site);

/// Currently armed site names, sorted (diagnostics / tests).
[[nodiscard]] std::vector<std::string> armed_sites();

}  // namespace repcheck::util::failpoint

/// True when `site` is armed and fires on this hit.  Disarmed cost: one
/// relaxed atomic load; `site` is not evaluated.
#define REPCHECK_FAILPOINT(site) \
  (::repcheck::util::failpoint::armed_count() != 0 && ::repcheck::util::failpoint::fires(site))
