#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

#include "telemetry/telemetry.hpp"

namespace repcheck::util {

namespace {

// Pool utilization series (docs/OBSERVABILITY.md, "pool.*"): task and
// chunk counts are exact; idle_ns is wall-clock and lands in the report's
// durations section.  Handles resolved once — the hot path is inc() only.
telemetry::Counter& pool_tasks_counter() {
  static telemetry::Counter& c = telemetry::counter("pool.tasks_executed");
  return c;
}
telemetry::Counter& pool_help_counter() {
  static telemetry::Counter& c = telemetry::counter("pool.help_runs");
  return c;
}
telemetry::Counter& pool_chunks_counter() {
  static telemetry::Counter& c = telemetry::counter("pool.chunks_executed");
  return c;
}
telemetry::Counter& pool_calls_counter() {
  static telemetry::Counter& c = telemetry::counter("pool.parallel_for_calls");
  return c;
}
telemetry::Counter& pool_idle_counter() {
  static telemetry::Counter& c = telemetry::counter("pool.idle_ns");
  return c;
}

/// Chunks claimed per lane on average; >1 so a lane that lands the one
/// crash-heavy chunk does not serialize the whole call behind it.
constexpr std::size_t kChunksPerLane = 8;

/// Shared state of one parallel_for call.  Heap-held via shared_ptr so a
/// participation ticket still queued after the call returns (because other
/// threads drained every chunk first) dereferences live memory: such a
/// stale ticket sees next >= chunks and returns without touching fn.
struct ParallelForJob {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> unfinished{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::mutex error_mutex;
  std::exception_ptr first_error;

  [[nodiscard]] bool done() const {
    return unfinished.load(std::memory_order_acquire) == 0;
  }

  /// Claims and runs chunks until none remain.  Every participant —
  /// workers holding a ticket and the initiating caller — runs this same
  /// loop, so scheduling is fully dynamic.
  void drain() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      pool_chunks_counter().inc();
      const std::size_t begin = c * grain;
      const std::size_t end = std::min(n, begin + grain);
      try {
        (*fn)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      if (unfinished.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!stopping_ && tasks_.empty() && telemetry::enabled()) {
        // Idle accounting costs two clock reads per sleep, paid only when
        // telemetry is armed and the worker actually has nothing to do.
        const auto idle_from = std::chrono::steady_clock::now();
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        pool_idle_counter().inc(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - idle_from)
                .count()));
      } else {
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      }
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    pool_tasks_counter().inc();
  }
}

bool ThreadPool::help_run_one_task() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tasks_.empty()) return false;
    task = std::move(tasks_.front());
    tasks_.pop();
  }
  task();
  pool_tasks_counter().inc();
  pool_help_counter().inc();
  return true;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  pool_calls_counter().inc();
  const std::size_t lanes = workers_.size() + 1;  // workers plus the caller
  if (lanes == 1 || n == 1) {
    fn(0, n);
    return;
  }

  auto job = std::make_shared<ParallelForJob>();
  job->n = n;
  job->chunks = std::min(n, lanes * kChunksPerLane);
  job->grain = (n + job->chunks - 1) / job->chunks;
  job->chunks = (n + job->grain - 1) / job->grain;
  job->fn = &fn;
  job->unfinished.store(job->chunks, std::memory_order_relaxed);

  // One participation ticket per worker that could usefully claim a chunk;
  // the caller is the remaining participant.  Extra tickets are harmless
  // no-ops, but they churn the queue, so don't enqueue more than needed.
  const std::size_t tickets = std::min(workers_.size(), job->chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t t = 0; t < tickets; ++t) {
      tasks_.emplace([job] { job->drain(); });
    }
  }
  if (tickets == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }

  job->drain();  // the caller participates

  // Chunks may still be running on other threads.  Instead of blocking,
  // help execute queued tasks — this keeps nested parallel_for calls
  // deadlock-free: a worker waiting here runs its own job's tickets (or
  // anybody else's) straight off the queue.  Only when the queue is empty
  // does it sleep until the last in-flight chunk signals completion.
  while (!job->done()) {
    if (help_run_one_task()) continue;
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock, [&job] { return job->done(); });
  }
  if (job->first_error) std::rethrow_exception(job->first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<std::size_t>(hw - 1) : std::size_t{0};
  }());
  return pool;
}

}  // namespace repcheck::util
