#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace repcheck::util {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t lanes = workers_.size() + 1;  // workers plus the caller
  if (lanes == 1 || n == 1) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(n, lanes);
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;

  std::atomic<std::size_t> remaining{chunks - 1};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::condition_variable done_cv;
  std::mutex done_mutex;

  auto run_chunk = [&](std::size_t begin, std::size_t end) {
    try {
      fn(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::size_t begin = 0;
  // Enqueue all but the last chunk; run the last on the calling thread.
  for (std::size_t c = 0; c + 1 < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([&, begin, end] {
        run_chunk(begin, end);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> done_lock(done_mutex);
          done_cv.notify_one();
        }
      });
    }
    cv_.notify_one();
    begin = end;
  }
  run_chunk(begin, n);

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? static_cast<std::size_t>(hw - 1) : std::size_t{0};
  }());
  return pool;
}

}  // namespace repcheck::util
