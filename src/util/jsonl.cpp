#include "util/jsonl.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace repcheck::util {

std::string format_double(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";  // cannot happen for a 64-byte buffer
  return std::string(buf, end);
}

std::optional<double> parse_double(std::string_view token) {
  if (token == "nan") return std::nan("");
  if (token == "inf") return HUGE_VAL;
  if (token == "-inf") return -HUGE_VAL;
  double value = 0.0;
  const auto* begin = token.data();
  const auto* end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string to_jsonl(const JsonObject& record) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : record) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(key);
    out += "\":";
    if (const auto* d = std::get_if<double>(&value)) {
      out += format_double(*d);
    } else if (const auto* s = std::get_if<std::string>(&value)) {
      out += '"';
      out += json_escape(*s);
      out += '"';
    } else {
      out += std::get<bool>(value) ? "true" : "false";
    }
  }
  out += '}';
  return out;
}

namespace {

/// Minimal single-line parser for the flat records to_jsonl emits.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : text_(line) {}

  std::optional<JsonObject> parse() {
    skip_ws();
    if (!consume('{')) return std::nullopt;
    JsonObject record;
    skip_ws();
    if (consume('}')) return done(record);
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string_into(key)) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      JsonScalar value;
      if (!parse_value_into(value)) return std::nullopt;
      record.insert_or_assign(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return done(record);
      return std::nullopt;
    }
  }

 private:
  std::optional<JsonObject> done(JsonObject& record) {
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return std::move(record);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char ch) {
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_string_into(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_++];
      if (ch == '"') return true;
      if (ch != '\\') {
        out += ch;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          if (code >= 0x80) return false;  // ASCII payloads only
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_value_into(JsonScalar& out) {
    if (pos_ >= text_.size()) return false;
    if (text_[pos_] == '"') {
      std::string s;
      if (!parse_string_into(s)) return false;
      out = std::move(s);
      return true;
    }
    // Bare token: number, bool, or the nan/inf extensions.
    std::size_t end = pos_;
    while (end < text_.size() && text_[end] != ',' && text_[end] != '}' && text_[end] != ' ' &&
           text_[end] != '\t') {
      ++end;
    }
    const std::string_view token = text_.substr(pos_, end - pos_);
    if (token.empty()) return false;
    pos_ = end;
    if (token == "true") {
      out = true;
      return true;
    }
    if (token == "false") {
      out = false;
      return true;
    }
    if (const auto d = parse_double(token)) {
      out = *d;
      return true;
    }
    return false;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonObject> parse_jsonl(std::string_view line) {
  return LineParser(line).parse();
}

}  // namespace repcheck::util
