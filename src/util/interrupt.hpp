// Graceful-drain signal handling for long-running campaign binaries.
//
// install_drain_handler() registers SIGINT/SIGTERM handlers with two-level
// semantics: the first signal sets an atomic drain flag (pollable by work
// loops, which finish in-flight units, flush their stores, and return with
// everything persisted resumable), a second signal force-exits with the
// conventional 128+signo code.  The handler is async-signal-safe: it only
// touches lock-free atomics and write(2).
#pragma once

#include <atomic>

namespace repcheck::util {

/// Installs the SIGINT/SIGTERM drain handlers (idempotent) and returns the
/// drain flag the handlers set.  The flag outlives the caller.
const std::atomic<bool>& install_drain_handler();

/// The drain flag itself, without installing handlers (false until a first
/// signal arrives after installation).
[[nodiscard]] const std::atomic<bool>& drain_flag();

/// True once a first SIGINT/SIGTERM was received.
[[nodiscard]] bool drain_requested();

/// Test hook: clears the flag and the signal count.
void reset_drain_for_testing();

}  // namespace repcheck::util
