// Aligned-column table writer for experiment output.
//
// Every bench binary reports its figure's series through this writer so the
// output is both human-readable (aligned columns) and machine-parsable
// (`--csv` mode emits plain comma-separated values).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace repcheck::util {

/// A cell is a number (rendered with fixed precision), text, or empty.
using Cell = std::variant<std::monostate, double, std::int64_t, std::string>;

/// Collects rows, then renders them with aligned columns or as CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> columns, int precision = 4);

  /// Appends a row; must have exactly one cell per column.
  void add_row(std::vector<Cell> row);

  /// Convenience: all-numeric row (distinct name — an initializer list of
  /// doubles would otherwise be ambiguous with the Cell overload).
  void add_numeric_row(const std::vector<double>& row);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_columns() const { return columns_.size(); }
  [[nodiscard]] const Cell& at(std::size_t row, std::size_t col) const;

  /// Renders with space-padded aligned columns.
  void print_aligned(std::ostream& os) const;

  /// Renders as CSV (no padding, comma separators).
  void print_csv(std::ostream& os) const;

  /// Dispatches on `csv`.
  void print(std::ostream& os, bool csv) const;

 private:
  [[nodiscard]] std::string render(const Cell& cell) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace repcheck::util
