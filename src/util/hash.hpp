// FNV-1a hashing for content-addressed cache keys.
//
// The campaign result cache addresses records by a hash of the canonical
// experiment parameters; FNV-1a is stable across platforms and releases
// (unlike std::hash), cheap, and good enough for the few-thousand-key
// universes a sweep produces.  content_hash_hex doubles the state to 128
// bits (two independent FNV streams) so accidental collisions are out of
// the picture even for very large campaigns.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace repcheck::util {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

/// 64-bit FNV-1a; `state` allows chaining over multiple fragments.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view data,
                                              std::uint64_t state = kFnv1aOffsetBasis) {
  for (const char ch : data) {
    state ^= static_cast<std::uint8_t>(ch);
    state *= kFnv1aPrime;
  }
  return state;
}

/// 32 lowercase hex chars: fnv1a64(data) concatenated with a second,
/// independently-seeded FNV-1a stream over the same bytes.
[[nodiscard]] inline std::string content_hash_hex(std::string_view data) {
  const std::uint64_t lo = fnv1a64(data);
  const std::uint64_t hi = fnv1a64(data, kFnv1aOffsetBasis ^ 0x9e3779b97f4a7c15ULL);
  static constexpr char digits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(hi >> (4 * i)) & 0xF];
    out[31 - i] = digits[(lo >> (4 * i)) & 0xF];
  }
  return out;
}

}  // namespace repcheck::util
