#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace repcheck::util {

namespace {

std::atomic<LogLevel> g_level{[] {
  if (const char* env = std::getenv("REPCHECK_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::kWarn;
}()};

std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& text) {
  if (text == "error") return LogLevel::kError;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "debug") return LogLevel::kDebug;
  return LogLevel::kInfo;
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "[%lld.%03lld %s] %s\n", static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), level_name(level), message.c_str());
}

}  // namespace repcheck::util
