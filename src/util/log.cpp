#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "telemetry/flight_recorder.hpp"
#include "util/jsonl.hpp"

namespace repcheck::util {

namespace {

std::atomic<LogLevel> g_level{[] {
  if (const char* env = std::getenv("REPCHECK_LOG")) {
    return parse_log_level(env);
  }
  return LogLevel::kWarn;
}()};

std::atomic<LogFormat> g_format{[] {
  const char* env = std::getenv("REPCHECK_LOG_FORMAT");
  return env != nullptr && std::strcmp(env, "jsonl") == 0 ? LogFormat::kJsonl : LogFormat::kHuman;
}()};

std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?????";
}

/// Lower-case level token for the JSONL sink ("warn", not "WARN ").
const char* level_token(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "unknown";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_format(LogFormat format) { g_format.store(format, std::memory_order_relaxed); }

LogFormat log_format() { return g_format.load(std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& text) {
  if (text == "error") return LogLevel::kError;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "debug") return LogLevel::kDebug;
  return LogLevel::kInfo;
}

std::string render_jsonl_log_line(LogLevel level, const std::string& message,
                                  std::int64_t ts_ms) {
  JsonObject record;
  record["level"] = std::string(level_token(level));
  record["msg"] = message;
  record["ts_ms"] = static_cast<double>(ts_ms);
  return to_jsonl(record);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  if (log_format() == LogFormat::kJsonl) {
    const std::string line = render_jsonl_log_line(level, message, ms);
    telemetry::flight_record_log_line(line.data(), line.size());
    std::lock_guard<std::mutex> lock(g_write_mutex);
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }
  char head[48];
  const int head_len =
      std::snprintf(head, sizeof(head), "[%lld.%03lld %s] ", static_cast<long long>(ms / 1000),
                    static_cast<long long>(ms % 1000), level_name(level));
  if (telemetry::flight_recorder_armed() && head_len > 0) {
    std::string line;
    line.reserve(static_cast<std::size_t>(head_len) + message.size());
    line.append(head, static_cast<std::size_t>(head_len));
    line += message;
    telemetry::flight_record_log_line(line.data(), line.size());
  }
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::fprintf(stderr, "%s%s\n", head, message.c_str());
}

}  // namespace repcheck::util
