// Canonical "|name=value" payload builder + FNV-128 content keys.
//
// Both content-addressed stores in the tree — the campaign result cache
// and the advisor serving layer's memo-cache — address records by the
// FNV-128 digest of a canonical parameter string: '|'-separated name=value
// fragments with doubles rendered in shortest round-trip form, so the same
// logical inputs always produce the same bytes and therefore the same key.
// This builder is that one implementation, extracted so the scheme cannot
// drift between subsystems.
//
// The builder is reusable: reset() keeps the payload's capacity, and
// hex_to() writes the digest into a caller buffer, so a serving hot path
// that canonicalizes one query per request performs no heap allocation
// after warm-up (BM_AdvisordCachedRequest holds it to zero).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/hash.hpp"

namespace repcheck::util {

/// Bytes of a content key: 128 bits as lowercase hex.
inline constexpr std::size_t kContentKeyHexChars = 32;

/// content_hash_hex without the std::string: writes exactly
/// kContentKeyHexChars lowercase hex chars to `out`.
void content_hash_hex_to(std::string_view data, char* out) noexcept;

class CanonicalKey {
 public:
  CanonicalKey() = default;
  /// Starts the payload as `head` (e.g. a SweepPoint's canonical string).
  explicit CanonicalKey(std::string_view head) : payload_(head) {}

  /// Clears the payload (capacity retained) and restarts it as `head`.
  void reset(std::string_view head = {}) {
    payload_.assign(head.data(), head.size());
  }

  CanonicalKey& add(std::string_view name, std::string_view value);
  CanonicalKey& add(std::string_view name, const char* value) {
    return add(name, std::string_view(value));
  }
  CanonicalKey& add(std::string_view name, std::uint64_t value);
  CanonicalKey& add(std::string_view name, std::int64_t value);
  CanonicalKey& add(std::string_view name, bool value) {
    return add(name, std::string_view(value ? "true" : "false"));
  }
  /// Doubles render shortest-round-trip (std::to_chars), matching
  /// util::format_double: nan / inf / -inf for the non-finite values.
  CanonicalKey& add(std::string_view name, double value);
  /// `|name=begin-end` — the campaign cache's shard-range fragment.
  CanonicalKey& add_range(std::string_view name, std::uint64_t begin, std::uint64_t end);

  [[nodiscard]] const std::string& payload() const { return payload_; }

  /// FNV-128 digest of the payload, 32 lowercase hex chars.
  [[nodiscard]] std::string hex() const { return content_hash_hex(payload_); }
  /// Same digest into a caller buffer of kContentKeyHexChars (no alloc).
  void hex_to(char* out) const noexcept { content_hash_hex_to(payload_, out); }

 private:
  void sep(std::string_view name) {
    if (!payload_.empty()) payload_ += '|';
    payload_.append(name.data(), name.size());
    payload_ += '=';
  }

  std::string payload_;
};

}  // namespace repcheck::util
