#include "util/canonical_key.hpp"

#include <charconv>
#include <cmath>

namespace repcheck::util {

void content_hash_hex_to(std::string_view data, char* out) noexcept {
  const std::uint64_t lo = fnv1a64(data);
  const std::uint64_t hi = fnv1a64(data, kFnv1aOffsetBasis ^ 0x9e3779b97f4a7c15ULL);
  static constexpr char digits[] = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(hi >> (4 * i)) & 0xF];
    out[31 - i] = digits[(lo >> (4 * i)) & 0xF];
  }
}

namespace {

/// Appends an integral or floating value via std::to_chars — no locale, no
/// allocation beyond the payload string's own growth.
template <typename T>
void append_chars(std::string& payload, T value) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec == std::errc{}) payload.append(buf, end);
}

}  // namespace

CanonicalKey& CanonicalKey::add(std::string_view name, std::string_view value) {
  sep(name);
  payload_.append(value.data(), value.size());
  return *this;
}

CanonicalKey& CanonicalKey::add(std::string_view name, std::uint64_t value) {
  sep(name);
  append_chars(payload_, value);
  return *this;
}

CanonicalKey& CanonicalKey::add(std::string_view name, std::int64_t value) {
  sep(name);
  append_chars(payload_, value);
  return *this;
}

CanonicalKey& CanonicalKey::add(std::string_view name, double value) {
  sep(name);
  if (std::isnan(value)) {
    payload_ += "nan";
  } else if (std::isinf(value)) {
    payload_ += value > 0 ? "inf" : "-inf";
  } else {
    append_chars(payload_, value);
  }
  return *this;
}

CanonicalKey& CanonicalKey::add_range(std::string_view name, std::uint64_t begin,
                                      std::uint64_t end) {
  sep(name);
  append_chars(payload_, begin);
  payload_ += '-';
  append_chars(payload_, end);
  return *this;
}

}  // namespace repcheck::util
