// Minimal command-line flag parser used by the bench and example binaries.
//
// Flags are declared up front with a name, a default value and a help string;
// `parse` then consumes `--name value` or `--name=value` pairs (and `--name`
// alone for booleans).  Unknown flags are an error so that typos in sweep
// scripts fail loudly instead of silently running the default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace repcheck::util {

/// Declarative set of command-line flags.
///
/// Usage:
///   FlagSet flags("fig03", "Model accuracy experiment");
///   auto& runs = flags.add_int64("runs", 100, "Monte-Carlo runs per point");
///   flags.parse(argc, argv);   // exits with a message on --help or error
///   use(*runs);
class FlagSet {
 public:
  FlagSet(std::string program, std::string description);

  /// Registers a flag; the returned pointer stays valid for the lifetime of
  /// the FlagSet and is updated in place by parse().
  const std::int64_t* add_int64(std::string name, std::int64_t def, std::string help);
  const double* add_double(std::string name, double def, std::string help);
  const std::string* add_string(std::string name, std::string def, std::string help);
  const bool* add_bool(std::string name, bool def, std::string help);

  /// Parses argv.  On `--help` prints usage and returns false (callers should
  /// exit 0).  Throws std::invalid_argument on malformed or unknown flags.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// Renders the usage/help text.
  [[nodiscard]] std::string usage() const;

  /// True if the flag was explicitly present on the command line.
  [[nodiscard]] bool provided(std::string_view name) const;

 private:
  using Value = std::variant<std::int64_t, double, std::string, bool>;
  struct Flag {
    Value value;
    std::string help;
    bool was_set = false;
  };

  Flag& insert(std::string name, Value def, std::string help);
  void assign(Flag& flag, const std::string& name, const std::string& text);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag, std::less<>> flags_;
};

}  // namespace repcheck::util
