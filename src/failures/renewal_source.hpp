// Per-processor renewal failure source for non-exponential laws.
//
// Each processor carries an independent renewal process whose inter-arrival
// distribution is pluggable (Weibull, lognormal, gamma, ...); a binary heap
// over per-processor next-failure times merges the streams.  With an
// exponential inter-arrival law this reproduces ExponentialFailureSource's
// distribution (the test suite checks that), at O(log N) per event — the
// price of generality.
#pragma once

#include <functional>
#include <queue>
#include <vector>

#include "failures/source.hpp"
#include "prng/xoshiro.hpp"

namespace repcheck::failures {

/// Draws one inter-arrival time from the per-processor law.
using InterArrivalSampler = std::function<double(prng::Xoshiro256pp&)>;

class RenewalFailureSource final : public FailureSource {
 public:
  RenewalFailureSource(std::uint64_t n_procs, InterArrivalSampler sampler,
                       std::uint64_t run_seed = 0);

  [[nodiscard]] Failure next() override;
  void reset(std::uint64_t run_seed) override;
  [[nodiscard]] std::uint64_t n_procs() const override { return n_procs_; }

 private:
  struct Entry {
    double time;
    std::uint64_t proc;
    bool operator>(const Entry& other) const { return time > other.time; }
  };

  void prime();

  std::uint64_t n_procs_;
  InterArrivalSampler sampler_;
  prng::Xoshiro256pp rng_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
};

}  // namespace repcheck::failures
