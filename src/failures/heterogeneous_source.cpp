#include "failures/heterogeneous_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace repcheck::failures {

HeterogeneousExponentialSource::HeterogeneousExponentialSource(
    std::vector<ProcessorClass> classes, std::uint64_t run_seed)
    : classes_(std::move(classes)), rng_(run_seed) {
  if (classes_.empty()) throw std::invalid_argument("need at least one processor class");
  cumulative_rate_.reserve(classes_.size());
  class_base_.reserve(classes_.size());
  for (const auto& c : classes_) {
    if (c.count == 0) throw std::invalid_argument("processor class must not be empty");
    if (!(c.mtbf > 0.0)) throw std::invalid_argument("class MTBF must be positive");
    class_base_.push_back(n_procs_);
    n_procs_ += c.count;
    total_rate_ += static_cast<double>(c.count) / c.mtbf;
    cumulative_rate_.push_back(total_rate_);
  }
}

Failure HeterogeneousExponentialSource::next() {
  // Superposed Poisson: exponential gap at the total rate...
  now_ += -std::log(1.0 - rng_.uniform01()) / total_rate_;
  // ...then the class proportionally to its rate share...
  const double u = rng_.uniform01() * total_rate_;
  const auto it = std::upper_bound(cumulative_rate_.begin(), cumulative_rate_.end(), u);
  const auto idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_rate_.begin(),
                               static_cast<std::ptrdiff_t>(classes_.size()) - 1));
  // ...and the processor uniformly within the class.
  const prng::UniformIndexSampler pick(classes_[idx].count);
  return {now_, class_base_[idx] + pick(rng_)};
}

void HeterogeneousExponentialSource::reset(std::uint64_t run_seed) {
  rng_ = prng::Xoshiro256pp(run_seed);
  now_ = 0.0;
}

}  // namespace repcheck::failures
