// FailureSource: the stream of fail-stop errors driving a simulation.
//
// A source emits an infinite sequence of (time, processor) failures with
// non-decreasing times.  Failures strike *processor slots* regardless of the
// slot's current dead/alive status — a hit on an already-dead processor is
// wasted — matching the MTTI model of Section 4.1 and the paper's simulator
// (dead processors are physical nodes that keep their failure law; the
// simulation layer decides the effect of each hit).
//
// reset(run_seed) rewinds the stream for a new Monte-Carlo replicate; two
// resets with the same seed must reproduce the identical stream.
#pragma once

#include <cstdint>
#include <memory>

namespace repcheck::failures {

struct Failure {
  double time = 0.0;
  std::uint64_t proc = 0;
};

class FailureSource {
 public:
  virtual ~FailureSource() = default;

  /// Next failure; times are non-decreasing between resets.
  [[nodiscard]] virtual Failure next() = 0;

  /// Rewinds the stream deterministically for replicate `run_seed`.
  virtual void reset(std::uint64_t run_seed) = 0;

  /// Number of processor slots the stream covers.
  [[nodiscard]] virtual std::uint64_t n_procs() const = 0;
};

/// Factory signature used by the Monte-Carlo driver: each parallel lane
/// builds its own source instance (sources are stateful and not
/// thread-safe).
using SourceFactory = std::unique_ptr<FailureSource> (*)();

}  // namespace repcheck::failures
