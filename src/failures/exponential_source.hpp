// IID exponential failures — the paper's analytic model.
//
// Per-processor exp(λ) failures superpose into a platform-wide Poisson
// process of rate Nλ with uniformly random processor assignment; sampling
// the superposition directly is exact and O(1) per failure regardless of N,
// which is what makes 200,000-processor simulations cheap.
//
// next() is served from a block of pre-drawn generator outputs: gaps are
// inverse-transformed over the block in one tight loop instead of one log()
// call per failure, and processor picks map buffered draws through the same
// Lemire test as direct sampling.  The raw stream is consumed in exactly
// the order the unbatched implementation consumed it, so every failure is
// bit-identical to the historical sequence (tests/test_failures.cpp pins
// this against a reference reimplementation).
#pragma once

#include <array>
#include <cstddef>

#include "failures/source.hpp"
#include "prng/distributions.hpp"
#include "prng/xoshiro.hpp"

namespace repcheck::failures {

class ExponentialFailureSource final : public FailureSource {
 public:
  /// `mtbf_proc` is the individual-processor MTBF in seconds.
  ExponentialFailureSource(std::uint64_t n_procs, double mtbf_proc, std::uint64_t run_seed = 0);

  [[nodiscard]] Failure next() override;
  void reset(std::uint64_t run_seed) override;
  [[nodiscard]] std::uint64_t n_procs() const override { return proc_picker_.bound(); }

  [[nodiscard]] double mtbf_proc() const { return 1.0 / proc_rate_; }

 private:
  void refill();

  static constexpr std::size_t kBatch = 256;  // even, so refills stay gap-aligned

  double proc_rate_;
  prng::ExponentialSampler gap_;
  prng::UniformIndexSampler proc_picker_;
  prng::Xoshiro256pp rng_;
  double now_ = 0.0;
  // Block of raw generator outputs plus gaps precomputed at even offsets
  // (where gap draws land while the consume pattern stays gap/pick/gap/...;
  // a Lemire rejection or mid-pick refill shifts the pattern and those gap
  // draws fall back to scalar inversion — same raw values, same results).
  std::array<std::uint64_t, kBatch> raw_{};
  std::array<double, kBatch> gap_at_even_{};
  std::size_t pos_ = kBatch;  // kBatch = buffer exhausted
};

}  // namespace repcheck::failures
