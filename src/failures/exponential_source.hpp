// IID exponential failures — the paper's analytic model.
//
// Per-processor exp(λ) failures superpose into a platform-wide Poisson
// process of rate Nλ with uniformly random processor assignment; sampling
// the superposition directly is exact and O(1) per failure regardless of N,
// which is what makes 200,000-processor simulations cheap.
#pragma once

#include "failures/source.hpp"
#include "prng/distributions.hpp"
#include "prng/xoshiro.hpp"

namespace repcheck::failures {

class ExponentialFailureSource final : public FailureSource {
 public:
  /// `mtbf_proc` is the individual-processor MTBF in seconds.
  ExponentialFailureSource(std::uint64_t n_procs, double mtbf_proc, std::uint64_t run_seed = 0);

  [[nodiscard]] Failure next() override;
  void reset(std::uint64_t run_seed) override;
  [[nodiscard]] std::uint64_t n_procs() const override { return proc_picker_.bound(); }

  [[nodiscard]] double mtbf_proc() const { return 1.0 / proc_rate_; }

 private:
  double proc_rate_;
  prng::ExponentialSampler gap_;
  prng::UniformIndexSampler proc_picker_;
  prng::Xoshiro256pp rng_;
  double now_ = 0.0;
};

}  // namespace repcheck::failures
