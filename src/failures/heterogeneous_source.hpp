// Heterogeneous exponential failures: processor classes with distinct MTBFs.
//
// Hussain et al. [25] — the partial-replication work the paper compares
// against — motivate partial replication with *non-uniform* node
// reliabilities; the paper confirms partial replication never pays on
// homogeneous platforms and leaves heterogeneity "outside the scope of
// this study."  This source enables exactly that study: contiguous classes
// of processors, each with its own exponential failure law.  The
// superposition is still Poisson (rate = Σ n_i λ_i), with the target class
// drawn proportionally to its rate and the processor uniformly within it.
#pragma once

#include <vector>

#include "failures/source.hpp"
#include "prng/distributions.hpp"
#include "prng/xoshiro.hpp"

namespace repcheck::failures {

struct ProcessorClass {
  std::uint64_t count = 0;  ///< processors in this class (laid out contiguously)
  double mtbf = 0.0;        ///< per-processor MTBF, seconds
};

class HeterogeneousExponentialSource final : public FailureSource {
 public:
  /// Classes occupy processor indices in order: class 0 gets [0, n_0),
  /// class 1 gets [n_0, n_0 + n_1), ...
  explicit HeterogeneousExponentialSource(std::vector<ProcessorClass> classes,
                                          std::uint64_t run_seed = 0);

  [[nodiscard]] Failure next() override;
  void reset(std::uint64_t run_seed) override;
  [[nodiscard]] std::uint64_t n_procs() const override { return n_procs_; }

  [[nodiscard]] double total_rate() const { return total_rate_; }
  [[nodiscard]] const std::vector<ProcessorClass>& classes() const { return classes_; }

 private:
  std::vector<ProcessorClass> classes_;
  std::vector<double> cumulative_rate_;  ///< prefix sums of class rates
  std::vector<std::uint64_t> class_base_;
  std::uint64_t n_procs_ = 0;
  double total_rate_ = 0.0;
  prng::Xoshiro256pp rng_;
  double now_ = 0.0;
};

}  // namespace repcheck::failures
