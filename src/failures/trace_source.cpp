#include "failures/trace_source.hpp"

#include <algorithm>

#include "prng/distributions.hpp"

namespace repcheck::failures {

namespace {
// First record index whose time is >= rotation (n if none), i.e. the head of
// the rotated replay order.
std::size_t start_index(const std::vector<traces::FailureRecord>& records, double rotation) {
  const auto it = std::lower_bound(
      records.begin(), records.end(), rotation,
      [](const traces::FailureRecord& r, double t) { return r.time < t; });
  return static_cast<std::size_t>(it - records.begin());
}
}  // namespace

TraceFailureSource::TraceFailureSource(traces::GroupedTraceSchedule schedule,
                                       std::uint64_t run_seed, NodeAssignment assignment)
    : schedule_(std::move(schedule)), assignment_(assignment), rng_(run_seed) {
  prime(run_seed);
}

TraceFailureSource::Cursor TraceFailureSource::make_cursor(std::uint32_t group,
                                                           double rotation) const {
  const auto& records = schedule_.trace().records();
  std::size_t idx = start_index(records, rotation);
  std::uint64_t wraps = 0;
  if (idx == records.size()) {  // rotation past the last record: wrap at once
    idx = 0;
    wraps = 0;  // records before the rotation still belong to cycle zero
  }
  Cursor cursor;
  cursor.group = group;
  cursor.index = idx;
  cursor.wraps = wraps;
  const double horizon = schedule_.trace().horizon();
  const double t = records[idx].time;
  const double base = t >= rotation ? t - rotation : t - rotation + horizon;
  cursor.time = base + static_cast<double>(wraps) * horizon;
  return cursor;
}

TraceFailureSource::Cursor TraceFailureSource::advance(const Cursor& cursor) const {
  const auto& records = schedule_.trace().records();
  const double horizon = schedule_.trace().horizon();
  const double rotation = rotations_[cursor.group];
  Cursor next = cursor;
  next.index = (cursor.index + 1) % records.size();
  // One cycle of the rotated order runs start_index .. n-1, 0 .. start-1;
  // re-entering the head means a full horizon has elapsed.
  std::size_t head = start_index(records, rotation);
  if (head == records.size()) head = 0;
  if (next.index == head) ++next.wraps;
  const double t = records[next.index].time;
  const double base = t >= rotation ? t - rotation : t - rotation + horizon;
  next.time = base + static_cast<double>(next.wraps) * horizon;
  return next;
}

void TraceFailureSource::prime(std::uint64_t run_seed) {
  rng_ = prng::Xoshiro256pp(run_seed);
  rotations_.assign(schedule_.n_groups(), 0.0);
  std::vector<Cursor> initial;
  initial.reserve(schedule_.n_groups());
  const double horizon = schedule_.trace().horizon();
  for (std::uint32_t g = 0; g < schedule_.n_groups(); ++g) {
    rotations_[g] = rng_.uniform01() * horizon;
    initial.push_back(make_cursor(g, rotations_[g]));
  }
  heap_ = std::priority_queue<Cursor, std::vector<Cursor>, std::greater<>>(std::greater<>{},
                                                                            std::move(initial));
}

Failure TraceFailureSource::next() {
  Cursor top = heap_.top();
  heap_.pop();
  heap_.push(advance(top));
  if (assignment_ == NodeAssignment::kUniformPerFailure) {
    const std::uint64_t base = static_cast<std::uint64_t>(top.group) * schedule_.group_size();
    const prng::UniformIndexSampler pick(schedule_.group_size());
    return {top.time, base + pick(rng_)};
  }
  const auto node = schedule_.trace().records()[top.index].node;
  return {top.time, schedule_.map_node(top.group, node)};
}

void TraceFailureSource::reset(std::uint64_t run_seed) { prime(run_seed); }

}  // namespace repcheck::failures
