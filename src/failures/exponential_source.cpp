#include "failures/exponential_source.hpp"

#include <stdexcept>

namespace repcheck::failures {

ExponentialFailureSource::ExponentialFailureSource(std::uint64_t n_procs, double mtbf_proc,
                                                   std::uint64_t run_seed)
    : proc_rate_((mtbf_proc > 0.0)
                     ? 1.0 / mtbf_proc
                     : throw std::invalid_argument("MTBF must be positive")),
      gap_(static_cast<double>(n_procs) * proc_rate_),
      proc_picker_(n_procs),
      rng_(run_seed) {}

void ExponentialFailureSource::refill() {
  for (auto& x : raw_) x = rng_();
  // Speculative: with the steady gap/pick alternation, gap draws sit at
  // even offsets.  gap_at_even_[i] is derived from raw_[i], so it is valid
  // whenever raw_[i] is in fact consumed as a gap — never wrong, at worst
  // unused.
  for (std::size_t i = 0; i < kBatch; i += 2) gap_at_even_[i] = gap_.from_raw(raw_[i]);
  pos_ = 0;
}

Failure ExponentialFailureSource::next() {
  if (pos_ == kBatch) refill();
  const std::size_t gap_slot = pos_++;
  now_ += (gap_slot % 2 == 0) ? gap_at_even_[gap_slot] : gap_.from_raw(raw_[gap_slot]);
  for (;;) {
    if (pos_ == kBatch) refill();
    if (const auto proc = proc_picker_.map_raw(raw_[pos_++])) return {now_, *proc};
  }
}

void ExponentialFailureSource::reset(std::uint64_t run_seed) {
  rng_ = prng::Xoshiro256pp(run_seed);
  now_ = 0.0;
  pos_ = kBatch;  // discard buffered draws: the stream restarts at the seed
}

}  // namespace repcheck::failures
