#include "failures/exponential_source.hpp"

#include <stdexcept>

namespace repcheck::failures {

ExponentialFailureSource::ExponentialFailureSource(std::uint64_t n_procs, double mtbf_proc,
                                                   std::uint64_t run_seed)
    : proc_rate_((mtbf_proc > 0.0)
                     ? 1.0 / mtbf_proc
                     : throw std::invalid_argument("MTBF must be positive")),
      gap_(static_cast<double>(n_procs) * proc_rate_),
      proc_picker_(n_procs),
      rng_(run_seed) {}

Failure ExponentialFailureSource::next() {
  now_ += gap_(rng_);
  return {now_, proc_picker_(rng_)};
}

void ExponentialFailureSource::reset(std::uint64_t run_seed) {
  rng_ = prng::Xoshiro256pp(run_seed);
  now_ = 0.0;
}

}  // namespace repcheck::failures
