#include "failures/renewal_source.hpp"

#include <stdexcept>

namespace repcheck::failures {

RenewalFailureSource::RenewalFailureSource(std::uint64_t n_procs, InterArrivalSampler sampler,
                                           std::uint64_t run_seed)
    : n_procs_(n_procs), sampler_(std::move(sampler)), rng_(run_seed) {
  if (n_procs_ == 0) throw std::invalid_argument("need at least one processor");
  if (!sampler_) throw std::invalid_argument("inter-arrival sampler must be callable");
  prime();
}

void RenewalFailureSource::prime() {
  heap_ = {};
  std::vector<Entry> initial;
  initial.reserve(n_procs_);
  for (std::uint64_t p = 0; p < n_procs_; ++p) {
    initial.push_back({sampler_(rng_), p});
  }
  heap_ = std::priority_queue<Entry, std::vector<Entry>, std::greater<>>(std::greater<>{},
                                                                          std::move(initial));
}

Failure RenewalFailureSource::next() {
  Entry top = heap_.top();
  heap_.pop();
  heap_.push({top.time + sampler_(rng_), top.proc});
  return {top.time, top.proc};
}

void RenewalFailureSource::reset(std::uint64_t run_seed) {
  rng_ = prng::Xoshiro256pp(run_seed);
  prime();
}

}  // namespace repcheck::failures
