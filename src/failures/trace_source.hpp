// Trace-driven failure source (Figure 4 pipeline).
//
// Replays a GroupedTraceSchedule: every group runs the trace cyclically,
// rotated around a per-run random date (Section 7.2), and the per-group
// streams are merged by a cursor heap.  The resulting stream is infinite —
// each group wraps around its horizon — so long simulations never run dry.
//
// Two node-assignment modes decide which processor each trace failure hits:
//   * kUniformPerFailure (default): the failure *time* comes from the trace,
//     the target processor is drawn uniformly within the group.  A trace of
//     a ~50-node machine replayed in a 3,125-processor group cannot name
//     real targets anyway, and the paper's remote-rack replica placement
//     makes the surviving spatial correlation irrelevant for pair deaths
//     (Section 2, citing El-Sayed & Schroeder).  This preserves exactly
//     what Figure 4 studies: non-IID, bursty arrival times.
//   * kStaticScatter: trace node ids are kept and scattered across the
//     group by GroupedTraceSchedule::map_node — flaky nodes stay flaky
//     across the run, at the price of only n_nodes distinct targets.
#pragma once

#include <queue>
#include <vector>

#include "failures/source.hpp"
#include "prng/xoshiro.hpp"
#include "traces/scaling.hpp"

namespace repcheck::failures {

enum class NodeAssignment {
  kUniformPerFailure,  ///< trace times, uniformly random target in the group
  kStaticScatter,      ///< trace node ids, hash-scattered across the group
};

class TraceFailureSource final : public FailureSource {
 public:
  explicit TraceFailureSource(traces::GroupedTraceSchedule schedule, std::uint64_t run_seed = 0,
                              NodeAssignment assignment = NodeAssignment::kUniformPerFailure);

  [[nodiscard]] Failure next() override;
  void reset(std::uint64_t run_seed) override;
  [[nodiscard]] std::uint64_t n_procs() const override { return schedule_.n_procs(); }

  [[nodiscard]] const traces::GroupedTraceSchedule& schedule() const { return schedule_; }

 private:
  struct Cursor {
    double time;          ///< emission time of the cursor's next record
    std::uint32_t group;
    std::size_t index;    ///< index into the trace record vector
    std::uint64_t wraps;  ///< completed horizon cycles
    bool operator>(const Cursor& other) const { return time > other.time; }
  };

  void prime(std::uint64_t run_seed);
  [[nodiscard]] Cursor advance(const Cursor& cursor) const;
  [[nodiscard]] Cursor make_cursor(std::uint32_t group, double rotation) const;

  traces::GroupedTraceSchedule schedule_;
  NodeAssignment assignment_;
  prng::Xoshiro256pp rng_;         ///< per-run: rotations + uniform targets
  std::vector<double> rotations_;  ///< per-group rotation dates (for tests)
  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<>> heap_;
};

}  // namespace repcheck::failures
