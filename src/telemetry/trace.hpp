// Cross-process trace merging (docs/OBSERVABILITY.md, "Merged traces").
//
// render_chrome_trace() (telemetry.hpp) exports one process's spans.
// This header adds the multi-process form the fleet uses: each worker
// snapshots its spans with snapshot_trace(), ships the snapshot over the
// fleet wire, and the coordinator lays every process out as its own
// named lane in a single Chrome trace-event document — a chaos run
// (leases, fences, requeues) renders as one Perfetto timeline.
//
// Clock alignment: steady_clock epochs differ per process, so every
// TraceSnapshot timestamp is relative to its *own* process's trace epoch
// and carries now_rel_ns, the sender's clock reading at snapshot time.
// The receiver computes shift_ns = its own trace_now_rel_ns() at receipt
// minus the sender's now_rel_ns; transport latency (a unix-socket frame)
// bounds the alignment error at well under a millisecond.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace repcheck::telemetry {

/// One finished span, timestamps relative to the process's trace epoch.
struct TraceEvent {
  std::uint32_t tid = 0;
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Every span ring's retained events plus the snapshot-time clock
/// reading (for cross-process alignment).
struct TraceSnapshot {
  std::uint64_t now_rel_ns = 0;
  std::vector<TraceEvent> events;
};

/// Copies the calling process's retained spans (all threads).
[[nodiscard]] TraceSnapshot snapshot_trace();

/// Nanoseconds since this process's trace epoch (pins the epoch on
/// first use, like the first span does).
[[nodiscard]] std::uint64_t trace_now_rel_ns();

/// One process lane in a merged trace: the Chrome trace pid (use the
/// real OS pid — it only needs to be distinct), the lane's display name
/// ("coordinator", "w0", ...), and the timestamp shift that maps this
/// lane's relative clock onto the merging process's.
struct ProcessLane {
  std::int64_t pid = 0;
  std::string name;
  std::int64_t shift_ns = 0;
  TraceSnapshot trace;
};

/// Renders all lanes into one Chrome trace-event JSON document with
/// process_name/thread_name metadata per lane; shifted timestamps that
/// would go negative clamp to zero.  Load in Perfetto (ui.perfetto.dev)
/// or chrome://tracing.
[[nodiscard]] std::string render_merged_chrome_trace(const std::vector<ProcessLane>& lanes);

}  // namespace repcheck::telemetry
