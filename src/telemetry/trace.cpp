#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

namespace repcheck::telemetry {

namespace {

/// Microseconds with fixed 3-decimal precision (Chrome trace ts/dur).
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::string render_merged_chrome_trace(const std::vector<ProcessLane>& lanes) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const auto& lane : lanes) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":";
    out += std::to_string(lane.pid);
    out += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    append_escaped(out, lane.name);
    out += "\"}}";
    std::set<std::uint32_t> tids;
    for (const auto& event : lane.trace.events) tids.insert(event.tid);
    for (const std::uint32_t tid : tids) {
      comma();
      out += "{\"ph\":\"M\",\"pid\":";
      out += std::to_string(lane.pid);
      out += ",\"tid\":";
      out += std::to_string(tid);
      out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
      append_escaped(out, lane.name);
      out += "-t";
      out += std::to_string(tid);
      out += "\"}}";
    }
    for (const auto& event : lane.trace.events) {
      const std::int64_t shifted = static_cast<std::int64_t>(event.start_ns) + lane.shift_ns;
      const std::uint64_t ts = shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
      comma();
      out += "{\"ph\":\"X\",\"pid\":";
      out += std::to_string(lane.pid);
      out += ",\"tid\":";
      out += std::to_string(event.tid);
      out += ",\"name\":\"";
      append_escaped(out, event.name);
      out += "\",\"cat\":\"repcheck\",\"ts\":";
      append_us(out, ts);
      out += ",\"dur\":";
      append_us(out, event.dur_ns);
      out += '}';
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace repcheck::telemetry
