// Prometheus text-format exposition (docs/OBSERVABILITY.md, "Live
// metrics").
//
// render_prometheus() turns a MetricsSnapshot into the Prometheus text
// format (version 0.0.4) served by the `metrics` op of repcheck_advisord
// and the fleet coordinator:
//
//   * every series name becomes `repcheck_<sanitized name>` — dots and
//     any other character outside [a-zA-Z0-9_:] map to '_';
//   * counters render as `<name>_total`, gauges as `<name>`;
//   * log₂ histograms render cumulatively: one `<name>_bucket{le="2^k-1"}`
//     line per non-empty bucket, the mandatory `le="+Inf"` bucket, a
//     `<name>_count`, and a `<name>_sum` that is the *upper-edge estimate*
//     (the exact sum is not tracked; the estimate never under-reports,
//     matching histogram_percentile's convention);
//   * span aggregates render as two labeled counter families,
//     `repcheck_span_count_total{span="..."}` and
//     `repcheck_span_ns_total{span="..."}`.
//
// Output is byte-stable for a fixed snapshot: the snapshot maps are
// sorted, label order is fixed, and every number renders via to_chars /
// a fixed snprintf format.  Caller-supplied labels attach to every
// series (the fleet coordinator stamps process="coordinator").
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace repcheck::telemetry {

/// Ordered label set rendered as {k1="v1",k2="v2"} on every series.
using PrometheusLabels = std::vector<std::pair<std::string, std::string>>;

/// Maps a repcheck series name onto the Prometheus charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*; offending characters (the '.' separators,
/// a leading digit) become '_'.  Exposed for tests.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Escapes a label value per the text format: backslash, double quote
/// and newline.  Exposed for tests.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Renders the whole snapshot (counters, gauges, histograms, spans) as
/// Prometheus text; ends with a trailing newline.
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot,
                                            const PrometheusLabels& labels = {});

}  // namespace repcheck::telemetry
