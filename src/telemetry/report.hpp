// Machine-readable run report: a deterministic JSON document rendered from
// a MetricsSnapshot.
//
// Layout (top-level keys in this fixed order, entries sorted by name):
//
//   schema      "repcheck-run-report-v1"
//   meta        caller-provided string fields (campaign name, seed, ...)
//   counters    every non-zero counter whose name does not end in "_ns"
//   gauges      every non-zero gauge
//   histograms  { "<name>": { "buckets": { "<k>": count, ... }, "count": n } }
//               where bucket k counts values in [2^(k-1), 2^k) (k = 0: zeros)
//   spans       { "<name>": count }          — exact, deterministic
//   durations   the ONLY nondeterministic section, rendered last:
//               { "counters": { "<*_ns counter>": ns, ... },
//                 "spans": { "<name>": { "mean_us": x, "total_us": y } } }
//
// Everything above "durations" is a pure function of the workload (counts
// are exact), so tests compare the document prefix byte-for-byte and mask
// only the durations object (tests/test_telemetry_report.cpp).
#pragma once

#include <map>
#include <string>

#include "telemetry/telemetry.hpp"

namespace repcheck::telemetry {

/// Caller-provided identity fields rendered under "meta" (sorted by key).
/// Values must themselves be deterministic — no timestamps.
using ReportMeta = std::map<std::string, std::string>;

/// Renders the report (2-space indent, trailing newline).
[[nodiscard]] std::string render_run_report(const MetricsSnapshot& snapshot,
                                            const ReportMeta& meta);

/// The line that opens the nondeterministic section; everything before it
/// is byte-for-byte reproducible.  Exposed for golden-file masking.
inline constexpr const char* kDurationsKey = "\"durations\"";

/// One-line live-stats JSON ({"schema":"repcheck-stats-v1",...}) — the
/// periodic heartbeat the CLIs emit to stderr under --stats-interval-ms.
/// Compact (no indentation, one trailing newline) so each emission is one
/// greppable JSONL record.
[[nodiscard]] std::string render_stats_line(const MetricsSnapshot& snapshot);

/// Background thread that emits render_stats_line(snapshot_metrics()) to
/// stderr every `interval_ms`.  The destructor stops and joins; an
/// interval of 0 disables the thread entirely (the CLIs construct one
/// unconditionally and let 0 mean "off").
class StatsEmitter {
 public:
  explicit StatsEmitter(std::uint64_t interval_ms);
  ~StatsEmitter();
  StatsEmitter(const StatsEmitter&) = delete;
  StatsEmitter& operator=(const StatsEmitter&) = delete;

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace repcheck::telemetry
