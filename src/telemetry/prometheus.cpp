#include "telemetry/prometheus.hpp"

#include <charconv>
#include <cstdio>

namespace repcheck::telemetry {

namespace {

bool valid_name_char(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') return true;
  return !first && c >= '0' && c <= '9';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc{}) out.append(buf, end);
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec == std::errc{}) out.append(buf, end);
}

/// Upper edge of log₂ bucket k (histogram_percentile's convention):
/// bucket 0 holds only zeros, bucket k >= 1 holds [2^(k-1), 2^k).
std::uint64_t bucket_upper_edge(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

/// Renders `{base...,extra}` after a series name; nothing when empty.
void append_labels(std::string& out, const PrometheusLabels& base,
                   std::string_view extra_key = {}, std::string_view extra_value = {}) {
  if (base.empty() && extra_key.empty()) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : base) {
    if (!first) out += ',';
    first = false;
    out += sanitize_metric_name(key);
    out += "=\"";
    out += escape_label_value(value);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out.append(extra_key.data(), extra_key.size());
    out += "=\"";
    out += escape_label_value(extra_value);
    out += '"';
  }
  out += '}';
}

void append_type(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    out += valid_name_char(c, i == 0) ? c : '_';
  }
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot, const PrometheusLabels& labels) {
  std::string out;
  out.reserve(1024);

  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = "repcheck_" + sanitize_metric_name(name);
    append_type(out, metric, "counter");
    out += metric;
    out += "_total";
    append_labels(out, labels);
    out += ' ';
    append_u64(out, value);
    out += '\n';
  }

  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = "repcheck_" + sanitize_metric_name(name);
    append_type(out, metric, "gauge");
    out += metric;
    append_labels(out, labels);
    out += ' ';
    append_i64(out, value);
    out += '\n';
  }

  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string metric = "repcheck_" + sanitize_metric_name(name);
    append_type(out, metric, "histogram");
    std::uint64_t cumulative = 0;
    double sum_estimate = 0.0;
    for (const auto& [bucket, count] : hist.buckets) {
      cumulative += count;
      const std::uint64_t edge = bucket_upper_edge(bucket);
      sum_estimate += static_cast<double>(count) * static_cast<double>(edge);
      out += metric;
      out += "_bucket";
      append_labels(out, labels, "le", std::to_string(edge));
      out += ' ';
      append_u64(out, cumulative);
      out += '\n';
    }
    out += metric;
    out += "_bucket";
    append_labels(out, labels, "le", "+Inf");
    out += ' ';
    append_u64(out, hist.count);
    out += '\n';
    out += metric;
    out += "_sum";
    append_labels(out, labels);
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %.0f\n", sum_estimate);
    out += buf;
    out += metric;
    out += "_count";
    append_labels(out, labels);
    out += ' ';
    append_u64(out, hist.count);
    out += '\n';
  }

  if (!snapshot.spans.empty()) {
    append_type(out, "repcheck_span_count", "counter");
    for (const auto& [name, stat] : snapshot.spans) {
      out += "repcheck_span_count_total";
      append_labels(out, labels, "span", name);
      out += ' ';
      append_u64(out, stat.count);
      out += '\n';
    }
    append_type(out, "repcheck_span_ns", "counter");
    for (const auto& [name, stat] : snapshot.spans) {
      out += "repcheck_span_ns_total";
      append_labels(out, labels, "span", name);
      out += ' ';
      append_u64(out, stat.total_ns);
      out += '\n';
    }
  }

  return out;
}

}  // namespace repcheck::telemetry
