#include "telemetry/telemetry.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>

#include "telemetry/flight_recorder.hpp"

namespace repcheck::telemetry {

namespace detail {

std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kCounterShards - 1);
  return shard;
}

}  // namespace detail

// Arm from the environment during static initialization (failpoint parity):
// REPCHECK_TELEMETRY=1 turns collection on before main().
namespace {
std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("REPCHECK_TELEMETRY");
  return env != nullptr && *env != '\0' && *env != '0';
}()};
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

/// Owns every series ever named.  Leaked on purpose (like the failpoint
/// registry): instrumented worker threads may outlive static destruction.
class Registry {
 public:
  static Registry& instance() {
    static Registry* r = new Registry();
    return *r;
  }

  Counter& counter(std::string_view name) { return *intern(counters_, name, 'c'); }
  Gauge& gauge(std::string_view name) { return *intern(gauges_, name, 'g'); }
  Histogram& histogram(std::string_view name) { return *intern(histograms_, name, 'h'); }

  void snapshot(MetricsSnapshot& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
      if (const auto v = c->value(); v != 0) out.counters.emplace(name, v);
    }
    for (const auto& [name, g] : gauges_) {
      if (const auto v = g->value(); v != 0) out.gauges.emplace(name, v);
    }
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot snap;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        if (const auto n = h->bucket_count(b); n != 0) {
          snap.buckets.emplace_back(b, n);
          snap.count += n;
        }
      }
      if (snap.count != 0) out.histograms.emplace(name, std::move(snap));
    }
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) {
      for (auto& shard : c->shards_) shard.value.store(0, std::memory_order_relaxed);
    }
    for (auto& [name, g] : gauges_) g->value_.store(0, std::memory_order_relaxed);
    for (auto& [name, h] : histograms_) {
      for (auto& bucket : h->buckets_) bucket.store(0, std::memory_order_relaxed);
    }
  }

 private:
  Registry() = default;

  template <typename T>
  T* intern(std::map<std::string, std::unique_ptr<T>, std::less<>>& series,
            std::string_view name, char kind) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = series.find(name);
    if (it != series.end()) return it->second.get();
    auto [inserted, ok] = series.emplace(std::string(name), std::unique_ptr<T>(new T()));
    (void)ok;
    // Map nodes are never erased, so the interned key's c_str() and the
    // handle both live for the process — safe for the crash-dump walk.
    detail::flight_register_series(kind, inserted->first.c_str(), inserted->second.get());
    return inserted->second.get();
  }

  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard.value.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::total_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) total += bucket.load(std::memory_order_relaxed);
  return total;
}

Counter& counter(std::string_view name) { return Registry::instance().counter(name); }
Gauge& gauge(std::string_view name) { return Registry::instance().gauge(name); }
Histogram& histogram(std::string_view name) { return Registry::instance().histogram(name); }

namespace {

/// Upper edge of bucket k: bucket 0 holds only zeros; bucket k >= 1 holds
/// [2^(k-1), 2^k), whose largest representable value is 2^k - 1 (bucket 64
/// saturates at uint64 max).
std::uint64_t bucket_upper_edge(std::size_t bucket) noexcept {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

/// Walks cumulative counts until the rank-th observation (1-based) is
/// covered.  `total` must be the sum of all `count(bucket)` values.
template <typename BucketCount>
std::uint64_t percentile_walk(std::uint64_t total, double p, BucketCount&& count) noexcept {
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // The p-th observation by rank, at least 1 so p = 0 means the minimum.
  std::uint64_t rank = static_cast<std::uint64_t>(p * static_cast<double>(total) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    cumulative += count(b);
    if (cumulative >= rank) return bucket_upper_edge(b);
  }
  return bucket_upper_edge(Histogram::kBuckets - 1);
}

}  // namespace

std::uint64_t histogram_percentile(const Histogram& h, double p) noexcept {
  return percentile_walk(h.total_count(), p,
                         [&](std::size_t b) { return h.bucket_count(b); });
}

std::uint64_t histogram_percentile(std::string_view name, double p) {
  return histogram_percentile(Registry::instance().histogram(name), p);
}

std::uint64_t histogram_percentile(const HistogramSnapshot& snap, double p) noexcept {
  return percentile_walk(snap.count, p, [&](std::size_t b) {
    for (const auto& [bucket, count] : snap.buckets) {
      if (bucket == b) return count;
    }
    return std::uint64_t{0};
  });
}

namespace detail {
// Implemented in span.cpp; collects per-name aggregates and the eviction
// total for snapshot_metrics.
void collect_span_stats(std::map<std::string, SpanStat>& out, std::uint64_t& dropped);
void reset_spans();
}  // namespace detail

MetricsSnapshot snapshot_metrics() {
  MetricsSnapshot snap;
  Registry::instance().snapshot(snap);
  std::uint64_t dropped = 0;
  detail::collect_span_stats(snap.spans, dropped);
  if (dropped != 0) snap.counters.emplace("telemetry.spans_dropped", dropped);
  return snap;
}

void reset_for_tests() {
  Registry::instance().reset();
  detail::reset_spans();
}

}  // namespace repcheck::telemetry
