#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "util/ring_buffer.hpp"

namespace repcheck::telemetry {

namespace {

using SteadyClock = std::chrono::steady_clock;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now().time_since_epoch())
          .count());
}

/// Trace epoch: captured once, before the first span is timed, so every
/// exported timestamp is a nonnegative offset from it.
std::uint64_t epoch_ns() {
  static const std::uint64_t epoch = now_ns();
  return epoch;
}

/// One finished span.  `name` is a string literal held by the site.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Most-recent spans the flight recorder can read without any lock: a
/// fixed in-place array the owner overwrites round-robin.  The crash
/// handler reads it raw — entries may tear, but the storage is always
/// valid and name pointers are string literals or null.
constexpr std::size_t kFlightTail = 16;

/// A recording thread's state: retained events plus exact per-name
/// aggregates (counts survive ring eviction).  The mutex is uncontended in
/// steady state — only the owning thread pushes; the exporter walks all
/// threads' states under it.
struct ThreadState {
  explicit ThreadState(std::uint32_t id) : tid(id), ring(kSpanRingCapacity) {}

  std::uint32_t tid;
  std::mutex mutex;
  util::RingBuffer<SpanEvent> ring;
  std::map<std::string, SpanStat, std::less<>> aggregates;
  std::uint64_t recorded = 0;  ///< pushes ever; recorded - ring.size() = evicted
  SpanEvent flight_tail[kFlightTail] = {};
};

// Flight-recorder side table of thread states (leaked, like the states
// themselves): lock-free so the crash handler can walk it.
constexpr std::size_t kMaxFlightThreads = 256;
ThreadState* g_flight_threads[kMaxFlightThreads] = {};
std::atomic<std::size_t> g_flight_thread_count{0};

struct ThreadDirectory {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadState>> threads;
};

// Leaked on purpose: spans may finish on threads that outlive static
// destruction order (the failpoint registry sets the precedent).
ThreadDirectory& directory() {
  static ThreadDirectory* d = new ThreadDirectory();
  return *d;
}

ThreadState& this_thread_state() {
  thread_local ThreadState* state = [] {
    auto& dir = directory();
    std::lock_guard<std::mutex> lock(dir.mutex);
    dir.threads.push_back(
        std::make_unique<ThreadState>(static_cast<std::uint32_t>(dir.threads.size())));
    ThreadState* fresh = dir.threads.back().get();
    // Publish to the flight recorder's lock-free walk (registration is
    // serialized by dir.mutex, so the count covers its slots).
    const std::size_t slot = g_flight_thread_count.load(std::memory_order_relaxed);
    if (slot < kMaxFlightThreads) {
      g_flight_threads[slot] = fresh;
      g_flight_thread_count.store(slot + 1, std::memory_order_release);
    }
    return fresh;
  }();
  return *state;
}

/// Microseconds with fixed 3-decimal precision — what Chrome trace `ts`
/// and `dur` expect.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

ScopedSpan::ScopedSpan(const char* name) noexcept
    : name_(name), active_(enabled()) {
  if (!active_) return;
  (void)epoch_ns();  // pin the epoch before the first timestamp
  start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const std::uint64_t end = now_ns();
  auto& state = this_thread_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.ring.push({name_, start_ns_, end - start_ns_});
  state.flight_tail[state.recorded % kFlightTail] = {name_, start_ns_, end - start_ns_};
  ++state.recorded;
  auto& agg = state.aggregates[name_];
  ++agg.count;
  agg.total_ns += end - start_ns_;
}

std::string render_chrome_trace() {
  const std::uint64_t epoch = epoch_ns();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto& dir = directory();
  std::lock_guard<std::mutex> dir_lock(dir.mutex);
  for (const auto& thread : dir.threads) {
    std::lock_guard<std::mutex> lock(thread->mutex);
    if (thread->recorded == 0) continue;
    // Thread-name metadata event so Perfetto labels the track.
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(thread->tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"repcheck-thread-";
    out += std::to_string(thread->tid);
    out += "\"}}";
    for (std::size_t i = 0; i < thread->ring.size(); ++i) {
      const SpanEvent& event = thread->ring[i];
      out += ",{\"ph\":\"X\",\"pid\":1,\"tid\":";
      out += std::to_string(thread->tid);
      out += ",\"name\":\"";
      out += event.name;  // span names are identifier-like literals
      out += "\",\"cat\":\"repcheck\",\"ts\":";
      append_us(out, event.start_ns - epoch);
      out += ",\"dur\":";
      append_us(out, event.dur_ns);
      out += '}';
    }
  }
  out += "]}\n";
  return out;
}

void write_chrome_trace(std::ostream& out) { out << render_chrome_trace(); }

SpanDropStats span_drop_stats() {
  SpanDropStats stats;
  auto& dir = directory();
  std::lock_guard<std::mutex> dir_lock(dir.mutex);
  for (const auto& thread : dir.threads) {
    std::lock_guard<std::mutex> lock(thread->mutex);
    const std::uint64_t evicted = thread->recorded - thread->ring.size();
    if (evicted > 0) {
      stats.dropped += evicted;
      ++stats.threads_affected;
    }
  }
  return stats;
}

TraceSnapshot snapshot_trace() {
  const std::uint64_t epoch = epoch_ns();
  TraceSnapshot snap;
  snap.now_rel_ns = now_ns() - epoch;
  auto& dir = directory();
  std::lock_guard<std::mutex> dir_lock(dir.mutex);
  for (const auto& thread : dir.threads) {
    std::lock_guard<std::mutex> lock(thread->mutex);
    for (std::size_t i = 0; i < thread->ring.size(); ++i) {
      const SpanEvent& event = thread->ring[i];
      snap.events.push_back({thread->tid, event.name, event.start_ns - epoch, event.dur_ns});
    }
  }
  return snap;
}

std::uint64_t trace_now_rel_ns() { return now_ns() - epoch_ns(); }

namespace detail {

void collect_span_stats(std::map<std::string, SpanStat>& out, std::uint64_t& dropped) {
  auto& dir = directory();
  std::lock_guard<std::mutex> dir_lock(dir.mutex);
  for (const auto& thread : dir.threads) {
    std::lock_guard<std::mutex> lock(thread->mutex);
    for (const auto& [name, stat] : thread->aggregates) {
      auto& total = out[name];
      total.count += stat.count;
      total.total_ns += stat.total_ns;
    }
    dropped += thread->recorded - thread->ring.size();
  }
}

void reset_spans() {
  auto& dir = directory();
  std::lock_guard<std::mutex> dir_lock(dir.mutex);
  for (const auto& thread : dir.threads) {
    std::lock_guard<std::mutex> lock(thread->mutex);
    thread->ring.clear();
    thread->aggregates.clear();
    thread->recorded = 0;
    for (auto& slot : thread->flight_tail) slot = {};
  }
}

void flight_dump_spans(int fd) noexcept {
  // Lock-free walk: reads may race the owning threads and tear, but the
  // storage is immortal and name pointers are string literals or null.
  const std::size_t count = g_flight_thread_count.load(std::memory_order_acquire);
  for (std::size_t t = 0; t < count; ++t) {
    const ThreadState* state = g_flight_threads[t];
    if (state == nullptr) continue;
    flight_write_cstr(fd, "thread ");
    flight_write_u64(fd, state->tid);
    flight_write_cstr(fd, " recorded ");
    flight_write_u64(fd, state->recorded);
    flight_write_cstr(fd, "\n");
    const std::uint64_t recorded = state->recorded;
    const std::uint64_t kept = recorded < kFlightTail ? recorded : kFlightTail;
    for (std::uint64_t i = recorded - kept; i < recorded; ++i) {
      const SpanEvent& event = state->flight_tail[i % kFlightTail];
      if (event.name == nullptr) continue;
      flight_write_cstr(fd, "  ");
      flight_write_cstr(fd, event.name);
      flight_write_cstr(fd, " start_ns ");
      flight_write_u64(fd, event.start_ns);
      flight_write_cstr(fd, " dur_ns ");
      flight_write_u64(fd, event.dur_ns);
      flight_write_cstr(fd, "\n");
    }
  }
}

}  // namespace detail

}  // namespace repcheck::telemetry
