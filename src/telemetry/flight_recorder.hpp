// Crash flight recorder (docs/OBSERVABILITY.md, "Flight recorder").
//
// When armed, a crash — SIGSEGV, SIGABRT, the drain handler's forced
// second-signal exit, or the chaos harness's programmatic kill -9
// failpoint — dumps a post-mortem text file before the process dies:
// the crash reason, every counter/gauge total, each recording thread's
// span-ring tail, and the last few formatted log lines.  A kill/stall
// chaos round therefore leaves forensic artifacts instead of silence.
//
// Arm with arm_flight_recorder("<path prefix>") or the environment
// variable REPCHECK_FLIGHT_RECORDER=<prefix> (read at static init, so
// it survives the fleet worker's fork+execv re-exec).  The dump lands
// at "<prefix>.<pid>.flight" — per-pid, so a whole fleet can share one
// prefix.
//
// Async-signal-safety: the dump path uses only open/write/close and
// manual integer formatting.  It never takes the registry or span-ring
// locks; instead, series handles and thread states self-register into
// fixed-capacity lock-free side tables (release-published, acquire-read)
// at interning time, and the dump walks those.  Values read mid-update
// may tear — a forensic artifact trades exactness for existing.
#pragma once

#include <cstddef>
#include <string>

namespace repcheck::telemetry {

/// Installs the SIGSEGV/SIGABRT dump handlers and records the dump-path
/// prefix.  Idempotent; the last prefix wins.  Not async-signal-safe
/// (call from startup code).
void arm_flight_recorder(const std::string& path_prefix);

/// True once armed (flag read is lock-free; callable anywhere).
[[nodiscard]] bool flight_recorder_armed() noexcept;

/// Writes the post-mortem dump now.  Async-signal-safe; a no-op when
/// unarmed.  Called by the crash handlers, the drain handler's forced
/// exit, and the fleet worker's kill -9 failpoint (SIGKILL itself is
/// uncatchable, so the dump happens just before the raise).
void flight_recorder_dump(const char* reason) noexcept;

/// Captures one formatted log line into the last-N ring the dump
/// prints.  Lock-free; lines over ~240 bytes truncate; a no-op when
/// unarmed.  util::log_line feeds this.
void flight_record_log_line(const char* data, std::size_t size) noexcept;

namespace detail {

/// Registry hook (metrics.cpp): publishes a series handle into the dump
/// side table.  `kind` is 'c' (Counter), 'g' (Gauge) or 'h' (Histogram);
/// `name` must outlive the process (the registry's interned key does).
void flight_register_series(char kind, const char* name, const void* series) noexcept;

/// Span hook (span.cpp): writes every registered thread's tid, recorded
/// count and span-ring tail to `fd`.  Async-signal-safe.
void flight_dump_spans(int fd) noexcept;

// Signal-safe formatting helpers shared with span.cpp's dump walk.
void flight_write(int fd, const char* data, std::size_t size) noexcept;
void flight_write_cstr(int fd, const char* text) noexcept;
void flight_write_u64(int fd, unsigned long long value) noexcept;

}  // namespace detail

}  // namespace repcheck::telemetry
