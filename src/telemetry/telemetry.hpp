// Process-wide telemetry: metrics registry, scoped spans, trace export.
//
// The registry hands out process-lifetime handles to three series kinds:
//
//   Counter    monotonic uint64, sharded per thread — the hot-path
//              primitive.  inc() on an enabled counter is one relaxed
//              fetch_add on the calling thread's shard; disabled it is a
//              single relaxed load of the global enabled flag (the same
//              fast-path discipline as util/failpoint.hpp, guarded by the
//              BM_EngineRunNoTelemetry / BM_EngineRunTelemetryOff pair).
//   Gauge      last-written int64 (queue depths, configuration echoes).
//   Histogram  log₂-bucketed uint64 distribution (shard sizes, retry
//              attempts): value v lands in bucket bit_width(v), i.e.
//              bucket k counts values in [2^(k-1), 2^k).
//
// Scoped spans (TELEMETRY_SPAN("campaign.shard")) time a lexical scope
// into the calling thread's ring buffer (util::RingBuffer; the oldest
// spans are evicted when a thread records more than kSpanRingCapacity)
// and into a per-name aggregate whose *count* is exact even after
// eviction.  render_chrome_trace() exports the retained spans as Chrome
// trace-event JSON loadable in Perfetto / chrome://tracing.
//
// Telemetry is off by default: every instrumentation site costs one
// relaxed atomic load and nothing else.  Arm it with set_enabled(true)
// (the repcheck_campaign CLI does this for --metrics-out/--trace-out) or
// REPCHECK_TELEMETRY=1 in the environment, parsed at static init.
//
// Determinism contract (docs/OBSERVABILITY.md): counter values, gauge
// values, histogram buckets and span *counts* are exact and reproducible
// for a fixed workload; wall-clock durations are the only nondeterministic
// series, and the run-report renderer (report.hpp) confines them to one
// "durations" object so tests can compare everything else byte-for-byte.
//
// Layering: repcheck_util links this library (the thread pool and the
// failpoint facility are instrumented), so telemetry must not link util
// back — it uses util's header-only ring buffer and renders its own JSON.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace repcheck::telemetry {

/// Global on/off switch; one relaxed load (the instrumentation fast path).
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

namespace detail {

/// Counter shard count; power of two.  Each thread hashes to one shard,
/// so concurrent inc() calls rarely share a cache line.
inline constexpr std::size_t kCounterShards = 16;

struct alignas(64) PaddedCount {
  std::atomic<std::uint64_t> value{0};
};

/// Shard index of the calling thread (assigned round-robin at first use).
[[nodiscard]] std::size_t thread_shard() noexcept;

}  // namespace detail

/// Monotonic counter.  Handles come from counter() and live forever.
class Counter {
 public:
  /// One relaxed load when telemetry is off; one extra relaxed fetch_add
  /// on this thread's shard when on.  Counts are exact: every increment
  /// lands in some shard and value() sums them all.
  void inc(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    shards_[detail::thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept;

 private:
  friend class Registry;
  Counter() = default;
  detail::PaddedCount shards_[detail::kCounterShards];
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<std::int64_t> value_{0};
};

/// Log₂-scale histogram over uint64 values: bucket 0 counts zeros, bucket
/// k >= 1 counts values in [2^(k-1), 2^k).  65 buckets cover the range.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  /// Bucket index a value lands in (exposed for tests and renderers).
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    std::size_t k = 0;
    while (v != 0) {
      v >>= 1;
      ++k;
    }
    return k;
  }

  void observe(std::uint64_t v) noexcept {
    if (!enabled()) return;
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const noexcept {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_count() const noexcept;

 private:
  friend class Registry;
  Histogram() = default;
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

/// Registry lookups: intern `name` and return its process-lifetime handle.
/// The lookup takes a mutex — resolve once into a local/static reference at
/// each instrumentation site, then use the handle on the hot path.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Percentile estimate from a log₂ histogram: the upper edge of the bucket
/// containing the p-th observation (p in [0, 1]), i.e. bucket 0 → 0 and
/// bucket k → 2^k - 1, so the estimate never under-reports.  Returns 0 for
/// an empty histogram.  The registered-name overload reads the live series
/// (serve's stats endpoint); the snapshot overload serves run reports and
/// the bench client.
[[nodiscard]] std::uint64_t histogram_percentile(const Histogram& h, double p) noexcept;
[[nodiscard]] std::uint64_t histogram_percentile(std::string_view name, double p);

// ---------------------------------------------------------------------------
// Scoped spans

/// Per-name span aggregate: `count` is exact (survives ring eviction);
/// `total_ns` is wall time and therefore nondeterministic.
struct SpanStat {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Times a lexical scope.  `name` must outlive the process (string
/// literals only — the exporter keeps the pointer).  Construction when
/// telemetry is off costs one relaxed load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool active_;
};

/// Spans a thread retains before evicting the oldest (per-thread ring).
inline constexpr std::size_t kSpanRingCapacity = 65536;

/// Retained spans as Chrome trace-event JSON ("X" complete events, one
/// pid, one tid per recording thread, ts/dur in microseconds).  Open the
/// file in Perfetto (ui.perfetto.dev) or chrome://tracing.  Multi-process
/// merged traces live in telemetry/trace.hpp.
[[nodiscard]] std::string render_chrome_trace();
void write_chrome_trace(std::ostream& out);

/// Ring-eviction accounting: spans evicted so far and how many thread
/// rings lost at least one.  Counts stay exact either way; only the
/// exported trace truncates.  The CLIs WARN from this at report time.
struct SpanDropStats {
  std::uint64_t dropped = 0;
  std::uint64_t threads_affected = 0;
};
[[nodiscard]] SpanDropStats span_drop_stats();

// ---------------------------------------------------------------------------
// Snapshots

struct HistogramSnapshot {
  std::uint64_t count = 0;  ///< total observations
  /// (bucket index, count) for every non-empty bucket, ascending.
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
};

/// Percentile estimate from an already-taken snapshot (same convention as
/// the live overloads above).
[[nodiscard]] std::uint64_t histogram_percentile(const HistogramSnapshot& snap,
                                                 double p) noexcept;

/// A consistent-enough point-in-time copy of every non-zero series, maps
/// sorted by name.  Counters whose name ends in "_ns" hold wall-clock
/// nanosecond totals; the report renderer segregates them (and all span
/// durations) into the nondeterministic "durations" section.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, SpanStat> spans;
};

[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Zeroes every registered series, clears every thread's span ring and
/// aggregates, and re-reads nothing from the environment.  Handles stay
/// valid.  Test isolation only — not thread-safe against concurrent
/// instrumentation.
void reset_for_tests();

}  // namespace repcheck::telemetry

// Two-level paste so __LINE__ expands before concatenation.
#define REPCHECK_TELEMETRY_CONCAT2(a, b) a##b
#define REPCHECK_TELEMETRY_CONCAT(a, b) REPCHECK_TELEMETRY_CONCAT2(a, b)

/// Times the enclosing scope as span `name` (a string literal).  Costs one
/// relaxed atomic load when telemetry is off.
#define TELEMETRY_SPAN(name) \
  ::repcheck::telemetry::ScopedSpan REPCHECK_TELEMETRY_CONCAT(repcheck_span_, __LINE__)(name)
