#include "telemetry/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include "telemetry/telemetry.hpp"

namespace repcheck::telemetry {

namespace {

// ---------------------------------------------------------------------------
// Armed state.  The prefix lives in a fixed buffer: the dump path must
// not allocate, and the handler may fire before/after any heap state is
// coherent.

constexpr std::size_t kPrefixMax = 512;
char g_prefix[kPrefixMax];
std::atomic<bool> g_armed{false};

// ---------------------------------------------------------------------------
// Series side table: every interned Counter/Gauge/Histogram publishes
// itself here so the dump can walk handles without the registry mutex.
// Slots are written before the count's release-store publishes them.

struct SeriesEntry {
  char kind = '\0';
  const char* name = nullptr;
  const void* series = nullptr;
};

constexpr std::size_t kMaxSeries = 512;
SeriesEntry g_series[kMaxSeries];
std::atomic<std::size_t> g_series_count{0};
std::atomic<std::size_t> g_series_reserved{0};

// ---------------------------------------------------------------------------
// Last-N log-line ring.  Writers claim a slot with fetch_add and guard
// the copy with a per-slot try-flag (a contended line is dropped rather
// than torn between two writers); the dump reads without locking — the
// process is dying anyway.

constexpr std::size_t kLogSlots = 64;
constexpr std::size_t kLogLineMax = 240;

struct LogSlot {
  std::atomic_flag busy = ATOMIC_FLAG_INIT;
  std::atomic<std::uint32_t> size{0};
  char text[kLogLineMax];
};

LogSlot g_log[kLogSlots];
std::atomic<std::uint64_t> g_log_seq{0};

// Re-entrancy guard: a crash inside the dump itself must not recurse.
std::atomic_flag g_dumping = ATOMIC_FLAG_INIT;

extern "C" void flight_signal_handler(int signo) {
  const char* reason = "fatal signal";
  if (signo == SIGSEGV) reason = "SIGSEGV";
  if (signo == SIGABRT) reason = "SIGABRT";
  if (signo == SIGBUS) reason = "SIGBUS";
  flight_recorder_dump(reason);
  // SA_RESETHAND restored the default action; re-raise so the process
  // still dies with the original signal (and its core-dump semantics).
  (void)::raise(signo);
}

/// Arm from the environment at static init, mirroring REPCHECK_TELEMETRY:
/// the fleet worker re-exec inherits the variable, so chaos-killed
/// workers dump without any code asking.
const bool g_env_armed = [] {
  const char* env = std::getenv("REPCHECK_FLIGHT_RECORDER");
  if (env == nullptr || *env == '\0') return false;
  arm_flight_recorder(env);
  return true;
}();

}  // namespace

namespace detail {

void flight_write(int fd, const char* data, std::size_t size) noexcept {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n <= 0) return;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void flight_write_cstr(int fd, const char* text) noexcept {
  flight_write(fd, text, std::strlen(text));
}

void flight_write_u64(int fd, unsigned long long value) noexcept {
  char buf[24];
  std::size_t i = sizeof(buf);
  do {
    buf[--i] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0 && i > 0);
  flight_write(fd, buf + i, sizeof(buf) - i);
}

void flight_register_series(char kind, const char* name, const void* series) noexcept {
  const std::size_t slot = g_series_reserved.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxSeries) return;  // table full: later series are absent from dumps
  g_series[slot].kind = kind;
  g_series[slot].name = name;
  g_series[slot].series = series;
  // Publish in order: a reader that sees count > slot sees the slot's
  // fields.  Registration is serialized by the registry mutex, so the
  // count advances monotonically with the slots it covers.
  g_series_count.store(slot + 1, std::memory_order_release);
}

}  // namespace detail

void arm_flight_recorder(const std::string& path_prefix) {
  const std::size_t n = path_prefix.size() < kPrefixMax - 1 ? path_prefix.size() : kPrefixMax - 1;
  std::memcpy(g_prefix, path_prefix.data(), n);
  g_prefix[n] = '\0';

  struct sigaction action{};
  action.sa_handler = flight_signal_handler;
  sigemptyset(&action.sa_mask);
  // One shot: the handler re-raises, and a crash *inside* the handler
  // must take the default action, not loop.
  action.sa_flags = SA_RESETHAND;
  sigaction(SIGSEGV, &action, nullptr);
  sigaction(SIGABRT, &action, nullptr);
  sigaction(SIGBUS, &action, nullptr);

  g_armed.store(true, std::memory_order_release);
}

bool flight_recorder_armed() noexcept { return g_armed.load(std::memory_order_acquire); }

void flight_record_log_line(const char* data, std::size_t size) noexcept {
  if (!flight_recorder_armed()) return;
  const std::uint64_t seq = g_log_seq.fetch_add(1, std::memory_order_relaxed);
  LogSlot& slot = g_log[seq % kLogSlots];
  if (slot.busy.test_and_set(std::memory_order_acquire)) return;  // collision: drop
  const std::size_t n = size < kLogLineMax ? size : kLogLineMax;
  std::memcpy(slot.text, data, n);
  slot.size.store(static_cast<std::uint32_t>(n), std::memory_order_release);
  slot.busy.clear(std::memory_order_release);
}

void flight_recorder_dump(const char* reason) noexcept {
  if (!flight_recorder_armed()) return;
  if (g_dumping.test_and_set(std::memory_order_acquire)) return;

  // "<prefix>.<pid>.flight", composed without allocation.
  char path[kPrefixMax + 48];
  std::size_t at = 0;
  for (; g_prefix[at] != '\0' && at < kPrefixMax; ++at) path[at] = g_prefix[at];
  path[at++] = '.';
  unsigned long long pid = static_cast<unsigned long long>(::getpid());
  char digits[24];
  std::size_t d = sizeof(digits);
  do {
    digits[--d] = static_cast<char>('0' + pid % 10);
    pid /= 10;
  } while (pid != 0);
  for (; d < sizeof(digits); ++d) path[at++] = digits[d];
  static const char kSuffix[] = ".flight";
  std::memcpy(path + at, kSuffix, sizeof(kSuffix));

  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    g_dumping.clear(std::memory_order_release);
    return;
  }

  using detail::flight_write;
  using detail::flight_write_cstr;
  using detail::flight_write_u64;

  flight_write_cstr(fd, "repcheck flight recorder v1\nreason: ");
  flight_write_cstr(fd, reason != nullptr ? reason : "unknown");
  flight_write_cstr(fd, "\npid: ");
  flight_write_u64(fd, static_cast<unsigned long long>(::getpid()));
  flight_write_cstr(fd, "\n\n== counters ==\n");

  const std::size_t series = g_series_count.load(std::memory_order_acquire);
  for (char kind : {'c', 'g', 'h'}) {
    if (kind == 'g') flight_write_cstr(fd, "\n== gauges ==\n");
    if (kind == 'h') flight_write_cstr(fd, "\n== histogram totals ==\n");
    for (std::size_t i = 0; i < series; ++i) {
      const SeriesEntry& entry = g_series[i];
      if (entry.kind != kind || entry.name == nullptr || entry.series == nullptr) continue;
      flight_write_cstr(fd, entry.name);
      flight_write_cstr(fd, " ");
      if (kind == 'c') {
        flight_write_u64(fd, static_cast<const Counter*>(entry.series)->value());
      } else if (kind == 'g') {
        const std::int64_t v = static_cast<const Gauge*>(entry.series)->value();
        if (v < 0) {
          flight_write_cstr(fd, "-");
          flight_write_u64(fd, static_cast<unsigned long long>(-(v + 1)) + 1);
        } else {
          flight_write_u64(fd, static_cast<unsigned long long>(v));
        }
      } else {
        flight_write_u64(fd, static_cast<const Histogram*>(entry.series)->total_count());
      }
      flight_write_cstr(fd, "\n");
    }
  }

  flight_write_cstr(fd, "\n== span ring tails ==\n");
  detail::flight_dump_spans(fd);

  flight_write_cstr(fd, "\n== last log lines ==\n");
  const std::uint64_t seq = g_log_seq.load(std::memory_order_relaxed);
  const std::uint64_t kept = seq < kLogSlots ? seq : kLogSlots;
  for (std::uint64_t i = seq - kept; i < seq; ++i) {
    const LogSlot& slot = g_log[i % kLogSlots];
    const std::uint32_t n = slot.size.load(std::memory_order_acquire);
    if (n == 0 || n > kLogLineMax) continue;
    flight_write(fd, slot.text, n);
    flight_write_cstr(fd, "\n");
  }

  flight_write_cstr(fd, "\n== end ==\n");
  ::close(fd);
  g_dumping.clear(std::memory_order_release);
}

}  // namespace repcheck::telemetry
