#include "telemetry/report.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

namespace repcheck::telemetry {

namespace {

bool is_duration_counter(const std::string& name) {
  return name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
}

/// Minimal JSON string escaping — enough for metric names and meta values
/// (quotes, backslashes, control characters).
void append_escaped(std::string& out, const std::string& text) {
  out += '"';
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

/// Renders `{ "k": render(v), ... }` at `indent` spaces, sorted (the maps
/// are std::map), or `{}` when empty.
template <typename Map, typename RenderValue>
void append_object(std::string& out, const Map& map, int indent, RenderValue&& render) {
  if (map.empty()) {
    out += "{}";
    return;
  }
  const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
  out += "{\n";
  bool first = true;
  for (const auto& [key, value] : map) {
    if (!first) out += ",\n";
    first = false;
    out += pad;
    append_escaped(out, key);
    out += ": ";
    render(out, value);
  }
  out += '\n';
  out.append(static_cast<std::size_t>(indent), ' ');
  out += '}';
}

}  // namespace

std::string render_run_report(const MetricsSnapshot& snapshot, const ReportMeta& meta) {
  std::string out = "{\n  \"schema\": \"repcheck-run-report-v1\",\n  \"meta\": ";
  append_object(out, meta, 2,
                [](std::string& o, const std::string& v) { append_escaped(o, v); });

  // Deterministic counters; the "_ns" wall-clock totals move to durations.
  std::map<std::string, std::uint64_t> exact;
  std::map<std::string, std::uint64_t> duration_counters;
  for (const auto& [name, value] : snapshot.counters) {
    (is_duration_counter(name) ? duration_counters : exact).emplace(name, value);
  }
  out += ",\n  \"counters\": ";
  append_object(out, exact, 2,
                [](std::string& o, std::uint64_t v) { o += std::to_string(v); });

  out += ",\n  \"gauges\": ";
  append_object(out, snapshot.gauges, 2,
                [](std::string& o, std::int64_t v) { o += std::to_string(v); });

  out += ",\n  \"histograms\": ";
  append_object(out, snapshot.histograms, 2, [](std::string& o, const HistogramSnapshot& h) {
    o += "{ \"buckets\": {";
    bool first = true;
    for (const auto& [bucket, count] : h.buckets) {
      if (!first) o += ',';
      first = false;
      o += " \"";
      o += std::to_string(bucket);
      o += "\": ";
      o += std::to_string(count);
    }
    o += " }, \"count\": ";
    o += std::to_string(h.count);
    o += " }";
  });

  out += ",\n  \"spans\": ";
  append_object(out, snapshot.spans, 2,
                [](std::string& o, const SpanStat& s) { o += std::to_string(s.count); });

  // Everything past this point is wall-clock and nondeterministic.
  out += ",\n  ";
  out += kDurationsKey;
  out += ": {\n    \"counters\": ";
  append_object(out, duration_counters, 4,
                [](std::string& o, std::uint64_t v) { o += std::to_string(v); });
  out += ",\n    \"spans\": ";
  append_object(out, snapshot.spans, 4, [](std::string& o, const SpanStat& s) {
    o += "{ \"mean_us\": ";
    append_us(o, s.count == 0 ? 0 : s.total_ns / s.count);
    o += ", \"total_us\": ";
    append_us(o, s.total_ns);
    o += " }";
  });
  out += "\n  }\n}\n";
  return out;
}

std::string render_stats_line(const MetricsSnapshot& snapshot) {
  std::string out = "{\"schema\":\"repcheck-stats-v1\",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"spans\":{";
  first = true;
  for (const auto& [name, stat] : snapshot.spans) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    out += std::to_string(stat.count);
  }
  out += "}}\n";
  return out;
}

struct StatsEmitter::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;
  std::thread thread;
};

StatsEmitter::StatsEmitter(std::uint64_t interval_ms) {
  if (interval_ms == 0) return;
  impl_ = new Impl();
  impl_->thread = std::thread([impl = impl_, interval_ms] {
    std::unique_lock<std::mutex> lock(impl->mutex);
    while (!impl->cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                              [&] { return impl->stop; })) {
      lock.unlock();
      const std::string line = render_stats_line(snapshot_metrics());
      std::fwrite(line.data(), 1, line.size(), stderr);
      std::fflush(stderr);
      lock.lock();
    }
  });
}

StatsEmitter::~StatsEmitter() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  delete impl_;
}

}  // namespace repcheck::telemetry
