// Streaming moments (Welford) with parallel merge.
//
// Every Monte-Carlo lane accumulates its replicate results into a private
// RunningStats; lanes are merged with the Chan et al. pairwise update, so
// results are independent of the number of worker threads.
#pragma once

#include <cstdint>

namespace repcheck::stats {

/// The raw accumulator fields, exposed for serialization (campaign result
/// cache): count/mean/m2/min/max round-trip a RunningStats exactly.
struct MomentState {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

class RunningStats {
 public:
  void push(double x);

  /// Combines two accumulators as if their samples had been pushed into one.
  void merge(const RunningStats& other);

  /// Snapshot of the raw fields (no emptiness checks — zeros when empty).
  [[nodiscard]] MomentState state() const;

  /// Rebuilds an accumulator from a state() snapshot, bit-exactly.
  [[nodiscard]] static RunningStats from_state(const MomentState& s);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace repcheck::stats
