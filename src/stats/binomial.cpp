#include "stats/binomial.hpp"

#include <stdexcept>

#include "math/beta.hpp"

namespace repcheck::stats {

double binomial_cdf(std::uint64_t k, std::uint64_t n, double p) {
  if (n == 0) throw std::invalid_argument("binomial_cdf requires n > 0");
  if (!(p >= 0.0 && p <= 1.0)) throw std::invalid_argument("binomial_cdf requires p in [0,1]");
  if (k >= n) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;  // k < n, but all trials succeed
  return math::regularized_incomplete_beta(static_cast<double>(n - k), static_cast<double>(k) + 1.0,
                                           1.0 - p);
}

double beta_quantile(double q, double a, double b) {
  if (!(q >= 0.0 && q <= 1.0)) throw std::invalid_argument("beta_quantile requires q in [0,1]");
  if (!(a > 0.0 && b > 0.0)) throw std::invalid_argument("beta_quantile requires a, b > 0");
  if (q == 0.0) return 0.0;
  if (q == 1.0) return 1.0;
  double lo = 0.0, hi = 1.0;
  // I_x(a, b) is monotone in x; ~100 bisections reach double resolution.
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (math::regularized_incomplete_beta(a, b, mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-15) break;
  }
  return 0.5 * (lo + hi);
}

BinomialCi clopper_pearson(std::uint64_t successes, std::uint64_t trials, double confidence) {
  if (trials == 0) throw std::invalid_argument("clopper_pearson requires at least one trial");
  if (successes > trials) throw std::invalid_argument("clopper_pearson: successes > trials");
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("clopper_pearson requires confidence in (0,1)");
  }
  const double alpha = 1.0 - confidence;
  BinomialCi ci;
  ci.successes = successes;
  ci.trials = trials;
  const double k = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  ci.lo = successes == 0 ? 0.0 : beta_quantile(alpha / 2.0, k, n - k + 1.0);
  ci.hi = successes == trials ? 1.0 : beta_quantile(1.0 - alpha / 2.0, k + 1.0, n - k);
  return ci;
}

}  // namespace repcheck::stats
