#include "stats/welford.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace repcheck::stats {

void RunningStats::push(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

MomentState RunningStats::state() const { return {count_, mean_, m2_, min_, max_}; }

RunningStats RunningStats::from_state(const MomentState& s) {
  RunningStats r;
  r.count_ = s.count;
  r.mean_ = s.mean;
  r.m2_ = s.m2;
  r.min_ = s.min;
  r.max_ = s.max;
  return r;
}

double RunningStats::mean() const {
  if (count_ == 0) throw std::logic_error("mean of empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (count_ == 0) throw std::logic_error("sem of empty accumulator");
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::min() const {
  if (count_ == 0) throw std::logic_error("min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  if (count_ == 0) throw std::logic_error("max of empty accumulator");
  return max_;
}

}  // namespace repcheck::stats
