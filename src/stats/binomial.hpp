// Exact binomial confidence intervals and tail probabilities.
//
// The statistical oracle checks simulated event probabilities (e.g. "the
// application is interrupted by time t with probability F(t)") against
// closed forms.  With a few thousand Bernoulli trials the normal
// approximation is fine near 1/2 but not in the tails, so the oracle uses
// the exact Clopper–Pearson interval (Beta quantiles via the regularized
// incomplete beta function).
#pragma once

#include <cstdint>

namespace repcheck::stats {

struct BinomialCi {
  double lo = 0.0;
  double hi = 1.0;
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;

  [[nodiscard]] bool contains(double p) const { return p >= lo && p <= hi; }
  [[nodiscard]] double point_estimate() const {
    return trials > 0 ? static_cast<double>(successes) / static_cast<double>(trials) : 0.0;
  }
};

/// P(X ≤ k) for X ~ Binomial(n, p), computed exactly via the regularized
/// incomplete beta identity P(X ≤ k) = I_{1−p}(n−k, k+1).
[[nodiscard]] double binomial_cdf(std::uint64_t k, std::uint64_t n, double p);

/// Quantile of the Beta(a, b) distribution (bisection on I_x(a, b)).
[[nodiscard]] double beta_quantile(double q, double a, double b);

/// Exact two-sided Clopper–Pearson interval covering the true success
/// probability with at least `confidence` (default 99%: the oracle's
/// acceptance level).
[[nodiscard]] BinomialCi clopper_pearson(std::uint64_t successes, std::uint64_t trials,
                                         double confidence = 0.99);

}  // namespace repcheck::stats
