// Chi-square goodness-of-fit test for discrete distributions.
//
// The oracle uses it where KS does not apply: integer-valued laws such as
// the failures-to-interruption count of Theorem 4.1, the geometric sampler
// and uniform index draws.  The p-value is the chi-square upper tail,
// Q(dof/2, x/2), via the regularized incomplete gamma.
#pragma once

#include <cstdint>
#include <vector>

namespace repcheck::stats {

struct ChiSquareTest {
  double statistic = 0.0;
  double p_value = 1.0;
  double dof = 0.0;

  /// True when the observed counts are consistent with the expected law.
  [[nodiscard]] bool consistent(double alpha = 0.01) const { return p_value > alpha; }
};

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom: P(X ≥ x).
[[nodiscard]] double chi_square_sf(double x, double dof);

/// Pearson chi-square test of observed bin counts against expected bin
/// probabilities (same length, probabilities must sum to ~1; every
/// expected count must be positive — merge sparse tail bins first).
/// dof = bins − 1 − estimated_params.
[[nodiscard]] ChiSquareTest chi_square_gof(const std::vector<std::uint64_t>& observed,
                                           const std::vector<double>& expected_probability,
                                           std::uint64_t estimated_params = 0);

}  // namespace repcheck::stats
