// Fixed-bin histogram over a closed range.
//
// Used by the trace statistics (inter-arrival spectra) and by the Figure 1
// bench to report Monte-Carlo interruption-time distributions.
#pragma once

#include <cstdint>
#include <vector>

namespace repcheck::stats {

class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void push(double x);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Fraction of all pushed samples at or below the upper edge of `bin`
  /// (includes underflow); an empirical CDF read off the histogram.
  [[nodiscard]] double cdf_at_bin(std::size_t bin) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace repcheck::stats
