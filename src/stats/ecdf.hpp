// Empirical CDF and Kolmogorov–Smirnov distance.
//
// Figure 1 compares analytic interruption-time CDFs against Monte-Carlo
// samples; the test suite uses the KS distance to assert that samplers and
// failure sources follow their claimed distributions.
#pragma once

#include <functional>
#include <vector>

namespace repcheck::stats {

class EmpiricalCdf {
 public:
  /// Takes ownership of the samples and sorts them.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F̂(x): fraction of samples ≤ x.
  [[nodiscard]] double operator()(double x) const;

  /// q-th sample quantile, q in [0, 1] (nearest-rank).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const { return samples_; }

  /// sup_x |F̂(x) − F(x)| against a reference CDF, evaluated at the jump
  /// points (where the supremum of a step-vs-continuous difference lives).
  [[nodiscard]] double ks_distance(const std::function<double(double)>& reference_cdf) const;

  /// Critical KS value at significance alpha (asymptotic; n ≥ ~35).
  [[nodiscard]] double ks_critical(double alpha = 0.01) const;

 private:
  std::vector<double> samples_;
};

}  // namespace repcheck::stats
