#include "stats/ks.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace repcheck::stats {

double kolmogorov_sf(double x) {
  if (!(x > 0.0)) return 1.0;
  // For x below ~0.2 the alternating series needs many terms to cancel to
  // a value indistinguishable from 1.
  if (x < 0.2) return 1.0;
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * static_cast<double>(k) * k * x * x);
    sum += (k % 2 == 1) ? term : -term;
    if (term < 1e-18) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsTest ks_test(const EmpiricalCdf& ecdf, const std::function<double(double)>& reference_cdf) {
  KsTest result;
  result.n = ecdf.size();
  result.statistic = ecdf.ks_distance(reference_cdf);
  const double sqrt_n = std::sqrt(static_cast<double>(result.n));
  result.p_value = kolmogorov_sf((sqrt_n + 0.12 + 0.11 / sqrt_n) * result.statistic);
  return result;
}

KsTest ks_test(std::vector<double> samples, const std::function<double(double)>& reference_cdf) {
  return ks_test(EmpiricalCdf(std::move(samples)), reference_cdf);
}

}  // namespace repcheck::stats
