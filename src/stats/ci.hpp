// Confidence intervals for Monte-Carlo means.
#pragma once

#include "stats/welford.hpp"

namespace repcheck::stats {

struct ConfidenceInterval {
  double lo;
  double hi;
  [[nodiscard]] double half_width() const { return (hi - lo) / 2.0; }
  [[nodiscard]] bool contains(double x) const { return x >= lo && x <= hi; }
};

/// Standard normal quantile Φ⁻¹(p) (Acklam's rational approximation,
/// |relative error| < 1.2e-9 — far below Monte-Carlo noise).
[[nodiscard]] double normal_quantile(double p);

/// Two-sided CI for the mean at the given confidence (default 95%), using
/// the normal approximation (replicate counts here are ≥ 30).
[[nodiscard]] ConfidenceInterval mean_confidence_interval(const RunningStats& stats,
                                                          double confidence = 0.95);

}  // namespace repcheck::stats
