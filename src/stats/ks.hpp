// One-sample Kolmogorov–Smirnov test with p-values.
//
// EmpiricalCdf::ks_distance gives the raw statistic; the oracle layer also
// needs a significance level so tests can assert "the simulated
// distribution is consistent with the closed form at the 99% level".  The
// p-value uses the asymptotic Kolmogorov distribution with the
// finite-sample correction of Numerical Recipes §14.3 (accurate for
// n ≳ 35, conservative below).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "stats/ecdf.hpp"

namespace repcheck::stats {

struct KsTest {
  double statistic = 0.0;  ///< sup_x |F̂(x) − F(x)|
  double p_value = 1.0;    ///< P(D ≥ statistic | samples drawn from F)
  std::size_t n = 0;

  /// True when the sample is consistent with F at significance alpha.
  [[nodiscard]] bool consistent(double alpha = 0.01) const { return p_value > alpha; }
};

/// Survival function of the Kolmogorov distribution,
/// Q_KS(x) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²x²}.
[[nodiscard]] double kolmogorov_sf(double x);

/// KS test of an empirical sample against a reference CDF.
[[nodiscard]] KsTest ks_test(const EmpiricalCdf& ecdf,
                             const std::function<double(double)>& reference_cdf);

/// Convenience overload: builds the EmpiricalCdf (sorting a copy).
[[nodiscard]] KsTest ks_test(std::vector<double> samples,
                             const std::function<double(double)>& reference_cdf);

}  // namespace repcheck::stats
