#include "stats/histogram.hpp"

#include <stdexcept>

namespace repcheck::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), counts_(bins, 0) {
  if (!(hi > lo)) throw std::invalid_argument("histogram requires hi > lo");
  if (bins == 0) throw std::invalid_argument("histogram requires at least one bin");
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram::push(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("histogram bin");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::cdf_at_bin(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("histogram bin");
  if (total_ == 0) throw std::logic_error("cdf of empty histogram");
  std::uint64_t acc = underflow_;
  for (std::size_t i = 0; i <= bin; ++i) acc += counts_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

}  // namespace repcheck::stats
