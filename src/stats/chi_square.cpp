#include "stats/chi_square.hpp"

#include <cmath>
#include <stdexcept>

#include "math/gamma.hpp"

namespace repcheck::stats {

double chi_square_sf(double x, double dof) {
  if (!(dof > 0.0)) throw std::invalid_argument("chi_square_sf requires dof > 0");
  if (x <= 0.0) return 1.0;
  return math::regularized_gamma_q(dof / 2.0, x / 2.0);
}

ChiSquareTest chi_square_gof(const std::vector<std::uint64_t>& observed,
                             const std::vector<double>& expected_probability,
                             std::uint64_t estimated_params) {
  if (observed.size() != expected_probability.size()) {
    throw std::invalid_argument("chi_square_gof: observed/expected size mismatch");
  }
  if (observed.size() < 2 + estimated_params) {
    throw std::invalid_argument("chi_square_gof: too few bins for the degrees of freedom");
  }
  std::uint64_t total = 0;
  double prob_sum = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    total += observed[i];
    prob_sum += expected_probability[i];
  }
  if (total == 0) throw std::invalid_argument("chi_square_gof: no observations");
  if (std::abs(prob_sum - 1.0) > 1e-6) {
    throw std::invalid_argument("chi_square_gof: expected probabilities must sum to 1");
  }

  ChiSquareTest result;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected = expected_probability[i] * static_cast<double>(total);
    if (!(expected > 0.0)) {
      throw std::invalid_argument("chi_square_gof: zero expected count (merge tail bins)");
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    result.statistic += diff * diff / expected;
  }
  result.dof = static_cast<double>(observed.size() - 1 - estimated_params);
  result.p_value = chi_square_sf(result.statistic, result.dof);
  return result;
}

}  // namespace repcheck::stats
