#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace repcheck::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : samples_(std::move(samples)) {
  if (samples_.empty()) throw std::invalid_argument("empirical cdf needs samples");
  std::sort(samples_.begin(), samples_.end());
}

double EmpiricalCdf::operator()(double x) const {
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::domain_error("quantile requires q in [0, 1]");
  }
  if (q <= 0.0) return samples_.front();
  const auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[std::min(rank == 0 ? 0 : rank - 1, samples_.size() - 1)];
}

double EmpiricalCdf::ks_distance(const std::function<double(double)>& reference_cdf) const {
  const double n = static_cast<double>(samples_.size());
  double sup = 0.0;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const double f = reference_cdf(samples_[i]);
    const double lower = static_cast<double>(i) / n;      // F̂ just below the jump
    const double upper = static_cast<double>(i + 1) / n;  // F̂ at the jump
    sup = std::max({sup, std::fabs(f - lower), std::fabs(f - upper)});
  }
  return sup;
}

double EmpiricalCdf::ks_critical(double alpha) const {
  if (!(alpha > 0.0) || !(alpha < 1.0)) throw std::domain_error("alpha must be in (0, 1)");
  const double c = std::sqrt(-0.5 * std::log(alpha / 2.0));
  return c / std::sqrt(static_cast<double>(samples_.size()));
}

}  // namespace repcheck::stats
